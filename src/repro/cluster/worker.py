"""The remote shard worker: one host's slice of the node network.

``repro worker --connect HOST:PORT`` runs this loop: connect to the
manager, register (HELLO/WELCOME handshake, protocol version checked),
then serve jobs.  For each JOB frame the worker rebuilds the engine from
the pickled program + prebuilt rule/goal graph + database — every worker
deterministically computes the *same* node ids and the same
``assign_shards`` map, so "which nodes are mine" needs no extra
coordination, exactly as the pool runtime's forked workers all inherit
one engine — and runs the same delivery loop as
``runtime/pool_engine._shard_worker_loop`` with the queue fabric swapped
for TCP frames:

* intra-shard messages ride a local deque (exact pending counts);
* cross-shard messages buffer per destination and ship as BATCH frames
  (the :class:`~repro.network.messages.MessageBatch` envelope, JSON-coded);
* the pool's RawArray ``sent`` counters become a cumulative logical-sent
  total piggybacked on every BATCH frame, so the receiver's
  ``pending_for`` stays a conservative in-transit bound (see
  docs/architecture.md — cross-component completion rests on the exact
  per-stream seq/upto accounting, which serializes losslessly);
* the pool's RawArray heartbeat slots become HEARTBEAT frames, throttled
  to the supervision interval: a worker wedged inside a handler goes
  silent on the wire exactly as it went still in shared memory.

Threading: the connection's reader runs on the main thread (BATCH frames
must keep flowing while a job computes), the job loop runs on a runner
thread fed through a queue, and all frame *writes* are serialized by
:class:`~repro.cluster.framing.FrameSocket`.  A lost connection aborts
the running job and triggers reconnect-with-backoff; the manager counts
the re-registration.
"""

from __future__ import annotations

import json
import os
import pickle
import queue as queue_module
import socket
import struct
import threading
import time
import traceback
from typing import Optional

from ..network.engine import MessagePassingEngine, assign_shards
from ..network.messages import (
    COMPUTATION_TYPES,
    Message,
    TupleMessage,
    TupleSet,
    coalesce_batch,
    logical_size,
)
from ..network.nodes import DRIVER_ID
from ..runtime.faults import FaultPlan, wedge_forever
from .framing import (
    FrameError,
    FrameSocket,
    FrameType,
    PROTOCOL_VERSION,
    decode_messages,
    encode_messages,
    rows_to_wire,
)

__all__ = ["worker_main", "ClusterRouter"]

#: Mirrors runtime/pool_engine: consecutive protocol-only deliveries after
#: which the loop briefly polls for remote input instead of spinning.
_PROTOCOL_SPIN_LIMIT = 64
_PROTOCOL_SPIN_POLL = 0.001

#: Inbox sentinel: the manager concluded the job, report stats and idle.
_STOP = "__stop__"


class _JobAborted(Exception):
    """Internal: the manager aborted this job (retry underway elsewhere)."""


class ClusterRouter:
    """The pool's :class:`ShardRouter` with TCP frames as the far fabric.

    Node logic needs only ``send`` and ``pending_for``.  Cross-shard sends
    buffer per destination shard and flush as one BATCH frame carrying the
    encoded member messages plus this link's cumulative logical-sent total
    (``s``); the receiving router treats ``max`` of those totals minus its
    own received total as in-transit work, so a queued batch holds
    ``empty_queues()`` false across the wire exactly as the pool's shared
    counters do across forks.  Per-link frame order is preserved end to
    end, so the per-channel FIFO the seq/upto end accounting needs
    survives the relay.
    """

    def __init__(
        self,
        fs: FrameSocket,
        job_id: int,
        shard_id: int,
        shard_of: dict[int, int],
        n_shards: int,
        batch_size: int,
        tuple_sets: bool = True,
    ) -> None:
        self.fs = fs
        self.job_id = job_id
        self.shard_id = shard_id
        self.shard_of = shard_of
        self.n_shards = n_shards
        self.batch_size = max(1, batch_size)
        self.tuple_sets = tuple_sets
        from collections import deque

        self.local: deque[Message] = deque()
        self.local_pending: dict[int, int] = {}
        self.buffers: dict[int, list[Message]] = {
            dest: [] for dest in range(n_shards) if dest != shard_id
        }
        # Logical (per-tuple) accounting per link, as in the pool runtime.
        self.sent_total: dict[int, int] = {d: 0 for d in self.buffers}
        self.known_sent: dict[int, int] = {}
        self.received_total: dict[int, int] = {}
        self.batches_out = 0
        self.batches_in = 0
        # Delivery statistics for the per-shard STATS report.
        self.delivered_logical = 0
        self.delivered_physical = 0
        self.tuple_rows = 0
        self.protocol_messages = 0
        self.by_receiver: dict[int, int] = {}

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        dest = self.shard_of[message.receiver]
        if dest == self.shard_id:
            self.local.append(message)
            self.local_pending[message.receiver] = (
                self.local_pending.get(message.receiver, 0) + 1
            )
            return
        self.sent_total[dest] += logical_size(message)
        buffer = self.buffers[dest]
        buffer.append(message)
        if len(buffer) >= self.batch_size:
            self._flush_one(dest)

    def _flush_one(self, dest: int) -> None:
        buffer = self.buffers[dest]
        if not buffer:
            return
        self.buffers[dest] = []
        self.batches_out += 1
        self.fs.send_json(
            FrameType.BATCH,
            {
                "j": self.job_id,
                "o": self.shard_id,
                "d": dest,
                "s": self.sent_total[dest],
                "m": encode_messages(buffer),
            },
        )

    def flush(self) -> None:
        for dest in self.buffers:
            self._flush_one(dest)

    def ingest(self, origin: int, sent_total: int, messages: list[Message]) -> None:
        self.batches_in += 1
        self.known_sent[origin] = max(self.known_sent.get(origin, 0), sent_total)
        self.received_total[origin] = self.received_total.get(origin, 0) + sum(
            logical_size(m) for m in messages
        )
        for message in coalesce_batch(messages, tuple_sets=self.tuple_sets):
            self.local.append(message)
            self.local_pending[message.receiver] = (
                self.local_pending.get(message.receiver, 0) + 1
            )

    # ------------------------------------------------------------------
    def pending_for(self, node_id: int) -> int:
        pending = self.local_pending.get(node_id, 0)
        for origin, known in self.known_sent.items():
            pending += max(0, known - self.received_total.get(origin, 0))
        return pending

    # ------------------------------------------------------------------
    def account_delivery(self, message: Message) -> None:
        size = logical_size(message)
        self.delivered_logical += size
        self.delivered_physical += 1
        if isinstance(message, (TupleMessage, TupleSet)):
            self.tuple_rows += size
        if not isinstance(message, COMPUTATION_TYPES):
            self.protocol_messages += size
        self.by_receiver[message.receiver] = (
            self.by_receiver.get(message.receiver, 0) + size
        )

    def counters(self) -> dict:
        return {
            "sent": {str(d): n for d, n in self.sent_total.items()},
            "received": {str(o): n for o, n in self.received_total.items()},
            "batches_out": self.batches_out,
            "batches_in": self.batches_in,
            "delivered_logical": self.delivered_logical,
            "delivered_physical": self.delivered_physical,
            "tuple_rows": self.tuple_rows,
            "protocol_messages": self.protocol_messages,
            "by_receiver": {str(k): v for k, v in self.by_receiver.items()},
        }


class _JobContext:
    """One job's moving parts, shared between reader and runner threads."""

    def __init__(self, job_id: int, shard_id: int, n_shards: int, spec: dict, hb) -> None:
        self.job_id = job_id
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.spec = spec
        self.heartbeat_interval = hb
        self.inbox: queue_module.Queue = queue_module.Queue()
        self.abort = threading.Event()


def _run_job(fs: FrameSocket, ctx: _JobContext) -> None:
    """Build this shard's engine and run the delivery loop (runner thread)."""
    try:
        _job_loop(fs, ctx)
    except _JobAborted:
        pass
    except FrameError:
        pass  # connection died mid-job; the main loop is already reconnecting
    except BaseException:
        try:
            fs.send_json(
                FrameType.ERROR,
                {
                    "j": ctx.job_id,
                    "where": f"shard {ctx.shard_id}",
                    "traceback": traceback.format_exc(),
                },
            )
        except Exception:
            pass


def _job_loop(fs: FrameSocket, ctx: _JobContext) -> None:
    spec = ctx.spec
    engine = MessagePassingEngine(
        spec["program"],
        validate_protocol=False,  # the oracle belongs to the simulator
        package_requests=spec.get("package_requests", False),
        # Hash-partitioned EDB replicas default to one per shard, exactly
        # as the pool runtime defaults ``edb_shards`` to its worker count.
        edb_shards=spec.get("edb_shards") or ctx.n_shards,
        tuple_sets=spec.get("tuple_sets", True),
        columnar=spec.get("columnar", True),
        database=spec.get("database"),
        graph=spec["graph"],
    )
    shard_of = assign_shards(engine, ctx.n_shards)
    router = ClusterRouter(
        fs,
        ctx.job_id,
        ctx.shard_id,
        shard_of,
        ctx.n_shards,
        spec.get("batch_size", 64),
        spec.get("tuple_sets", True),
    )
    processes = engine.processes
    hosted = [
        process
        for node_id, process in processes.items()
        if shard_of[node_id] == ctx.shard_id
    ]
    fault_plan: Optional[FaultPlan] = spec.get("fault_plan")
    injector = (
        fault_plan.injector(ctx.shard_id) if fault_plan is not None else None
    )
    labels: dict[int, str] = {}
    if injector is not None:
        for node_id in processes:
            if node_id == DRIVER_ID:
                labels[node_id] = "driver"
            else:
                try:
                    labels[node_id] = engine.graph.node_label(node_id)
                except KeyError:  # EDB replicas live outside the graph
                    labels[node_id] = f"edb-replica:{node_id}"

    if shard_of[DRIVER_ID] == ctx.shard_id:
        driver = engine.driver
        root_stream = driver.feeders[engine.graph.root]

        def on_complete() -> None:
            # Flush trailing cross-shard traffic first: conclusion-time
            # ends/component-dones must not sit in a buffer while the
            # manager stops the job.
            router.flush()
            fs.send_json(
                FrameType.DONE,
                {
                    "j": ctx.job_id,
                    "answers": rows_to_wire(driver.answers),
                    "seq": root_stream.last_seq_sent,
                    "upto": root_stream.last_upto_ended,
                },
            )

        driver.on_complete = on_complete
        driver.start(router)  # type: ignore[arg-type]

    hb = ctx.heartbeat_interval
    poll_interval = max(0.01, hb / 4.0) if hb else 0.05
    beat_every = min(0.05, hb / 2.0) if hb else None
    last_beat = 0.0
    protocol_spin = 0

    def beat() -> None:
        nonlocal last_beat
        if beat_every is None:
            return
        now = time.monotonic()
        if now - last_beat >= beat_every:
            last_beat = now
            fs.send_json(
                FrameType.HEARTBEAT, {"j": ctx.job_id, "sh": ctx.shard_id}
            )

    def drain_one(timeout: Optional[float] = None) -> bool:
        """Ingest one inbox item; True when the loop should exit (STOP)."""
        try:
            item = (
                ctx.inbox.get_nowait()
                if timeout is None
                else ctx.inbox.get(timeout=timeout)
            )
        except queue_module.Empty:
            return False
        if item == _STOP:
            raise StopIteration
        origin, sent_total, messages = item
        if injector is not None:
            injector.delay()
        router.ingest(origin, sent_total, messages)
        return False

    try:
        while True:
            if ctx.abort.is_set():
                raise _JobAborted
            beat()
            # 1) Drain the wire inbox without blocking.
            while True:
                try:
                    item = ctx.inbox.get_nowait()
                except queue_module.Empty:
                    break
                if item == _STOP:
                    raise StopIteration
                origin, sent_total, messages = item
                if injector is not None:
                    injector.delay()
                router.ingest(origin, sent_total, messages)
            # 2) Deliver one local message.
            if router.local:
                if protocol_spin >= _PROTOCOL_SPIN_LIMIT:
                    protocol_spin = 0
                    router.flush()
                    drain_one(timeout=_PROTOCOL_SPIN_POLL)
                message = router.local.popleft()
                router.local_pending[message.receiver] -= 1
                protocol_spin = (
                    0
                    if isinstance(message, COMPUTATION_TYPES)
                    else protocol_spin + 1
                )
                if injector is not None:
                    action = injector.on_delivery(labels.get(message.receiver))
                    if action == "kill":  # pragma: no cover - worker dies
                        os._exit(1)
                    if action == "wedge":  # pragma: no cover - reaped later
                        wedge_forever()
                router.account_delivery(message)
                process = processes[message.receiver]
                process.handle(message, router)  # type: ignore[arg-type]
                process.on_idle_check(router)  # type: ignore[arg-type]
                continue
            # 3) Idle: flush request packaging, idle-check every hosted
            #    node, ship buffered batches, then block briefly for
            #    remote input (bounded so heartbeats keep flowing).
            for process in hosted:
                if process._request_buffer:
                    process.flush_requests(router)  # type: ignore[arg-type]
            for process in hosted:
                process.on_idle_check(router)  # type: ignore[arg-type]
            router.flush()
            if router.local:
                continue
            drain_one(timeout=poll_interval)
    except StopIteration:
        pass
    # Job concluded: report this shard's counters (plus per-node tuple
    # footprints, so the client can rebuild the node table remotely).
    tuples_by_node = {
        str(node_id): process.tuples_stored
        for node_id, process in processes.items()
        if shard_of[node_id] == ctx.shard_id and getattr(process, "tuples_stored", 0)
    }
    counters = router.counters()
    counters["tuples_by_node"] = tuples_by_node
    fs.send_json(
        FrameType.STATS, {"j": ctx.job_id, "sh": ctx.shard_id, "c": counters}
    )


# ----------------------------------------------------------------------
def _serve_connection(fs: FrameSocket, quiet: bool) -> None:
    """Dispatch frames from the manager until the connection dies."""
    current: Optional[_JobContext] = None
    runner: Optional[threading.Thread] = None
    try:
        while True:
            frame = fs.recv_frame()
            if frame.ftype == FrameType.JOB:
                (header_len,) = struct.unpack_from("!I", frame.payload)
                head = json.loads(
                    frame.payload[4 : 4 + header_len].decode("utf-8")
                )
                spec = pickle.loads(frame.payload[4 + header_len :])
                current = _JobContext(
                    head["j"], head["sh"], head["n"], spec, head.get("hb")
                )
                runner = threading.Thread(
                    target=_run_job,
                    args=(fs, current),
                    name=f"job-{head['j']}-shard-{head['sh']}",
                    daemon=True,
                )
                runner.start()
            elif frame.ftype == FrameType.BATCH:
                body = frame.json()
                if current is not None and body.get("j") == current.job_id:
                    current.inbox.put(
                        (
                            body.get("o", 0),
                            body.get("s", 0),
                            decode_messages(body.get("m", [])),
                        )
                    )
            elif frame.ftype == FrameType.STOP:
                if current is not None and frame.json().get("j") == current.job_id:
                    current.inbox.put(_STOP)
                    if runner is not None:
                        runner.join(timeout=10.0)
                    current, runner = None, None
            elif frame.ftype == FrameType.ABORT:
                if current is not None and frame.json().get("j") == current.job_id:
                    current.abort.set()
                    current.inbox.put(_STOP)  # unblock a waiting get
                    current, runner = None, None
            elif frame.ftype == FrameType.PING:
                fs.send_json(FrameType.PONG, frame.json())
    finally:
        if current is not None:
            current.abort.set()
            current.inbox.put(_STOP)


def worker_main(
    connect: str,
    name: Optional[str] = None,
    reconnect_attempts: int = 60,
    reconnect_backoff: float = 0.25,
    quiet: bool = True,
) -> None:
    """Run a shard worker against ``connect`` (``"host:port"``) until killed.

    Lost connections reconnect with linear backoff under the same name, so
    the manager's per-worker ``reconnects`` counter records every flap; a
    handshake REJECT (protocol version mismatch) is fatal, not retried.
    """
    host, _, port_text = connect.rpartition(":")
    address = (host or "127.0.0.1", int(port_text))
    failures = 0
    while True:
        try:
            sock = socket.create_connection(address, timeout=10.0)
        except OSError:
            failures += 1
            if failures > reconnect_attempts:
                raise
            time.sleep(reconnect_backoff)
            continue
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        fs = FrameSocket(sock)
        try:
            fs.send_json(
                FrameType.HELLO,
                {"role": "worker", "name": name, "pid": os.getpid()},
            )
            welcome = fs.recv_frame(timeout=10.0)
            if welcome.ftype == FrameType.REJECT:
                raise RuntimeError(
                    f"manager rejected this worker: "
                    f"{welcome.json().get('reason', 'unknown reason')}"
                )
            if welcome.ftype != FrameType.WELCOME:
                raise FrameError(
                    f"expected WELCOME, got frame type {welcome.ftype}"
                )
            name = welcome.json().get("name", name)
            if not quiet:
                print(
                    f"[{name}] registered with {connect} "
                    f"(protocol v{PROTOCOL_VERSION})",
                    flush=True,
                )
            failures = 0
            fs.sock.settimeout(None)
            _serve_connection(fs, quiet)
        except (FrameError, ConnectionError, OSError, socket.timeout):
            failures += 1
            if failures > reconnect_attempts:
                raise
            if not quiet:
                print(f"[{name}] connection lost; reconnecting", flush=True)
            time.sleep(reconnect_backoff)
        finally:
            fs.close()
