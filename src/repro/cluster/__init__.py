"""The multi-host shard runtime: TCP transport, manager, remote workers.

The paper's thesis is that logical query evaluation — including the
Section 3.2 termination protocol — is defined entirely in terms of
messages, so it ports across transports unchanged.  This package is that
claim demonstrated for real: the same node processes, message vocabulary,
and end-accounting as the in-process and pooled runtimes, carried over
length-prefixed TCP frames between hosts.

Entry points:

* :func:`evaluate_cluster` — evaluate one query over a manager's workers
  (``runtime="cluster"`` in :class:`~repro.session.Session` and the CLI);
* :class:`ClusterHarness` — a localhost manager + worker-process cluster
  for CI and single-machine use;
* :func:`~repro.cluster.worker.worker_main` — the remote worker loop
  behind ``repro worker --connect HOST:PORT``;
* :class:`~repro.cluster.manager.ClusterManager` / :class:`ManagerThread`
  — the hub: registration, shard dispatch, relay, supervision;
* :class:`ClusterClient` — the connection-pooled job-submission client.

See the "Distributed evaluation" section of docs/architecture.md for the
topology, the failure model, and why the termination argument survives
the wire.
"""

from .client import ClusterClient, ClusterError, NoWorkersError
from .evaluate import ClusterQueryResult, evaluate_cluster
from .framing import PROTOCOL_VERSION, FrameError
from .harness import ClusterHarness
from .manager import ClusterManager, ManagerThread
from .worker import worker_main

__all__ = [
    "PROTOCOL_VERSION",
    "ClusterClient",
    "ClusterError",
    "ClusterHarness",
    "ClusterManager",
    "ClusterQueryResult",
    "FrameError",
    "ManagerThread",
    "NoWorkersError",
    "evaluate_cluster",
    "worker_main",
]
