"""The cluster manager: registration, shard dispatch, relay, supervision.

One asyncio TCP server plays the role the parent process plays in the
pooled runtime (``runtime/pool_engine.py``), translated onto sockets:

* **Registration.**  Workers connect, send a HELLO carrying the protocol
  version byte, and are welcomed into the registry (or rejected with a
  typed reason on a version mismatch).  A worker that reconnects under the
  same name keeps its identity and bumps a ``reconnects`` counter.

* **Dispatch.**  A client submits a JOB (pickled program + prebuilt
  rule/goal graph + database).  The manager assigns one shard per
  registered worker and forwards the job blob verbatim with a per-worker
  header naming its ``shard_id`` — every worker rebuilds the *same* engine
  from the same blob and computes the same deterministic
  ``assign_shards`` map, exactly as the pool's forked workers inherit one
  engine, so the manager itself never needs to parse a Datalog program.

* **Relay.**  Cross-shard :class:`~repro.network.messages.MessageBatch`
  envelopes travel worker → manager → worker as BATCH frames.  Per-origin
  frame order is preserved end to end (one reader coroutine per worker,
  one serialized writer per destination), which is the per-channel FIFO
  the Section 3.2 seq/upto accounting relies on.  The relay is also where
  transport faults (``FaultPlan.drop_link``/``delay_link``/
  ``duplicate_link``/``partition_worker``) are injected — the one place
  every cross-shard byte passes.

* **Supervision.**  The RawArray heartbeat slots of the pool runtime
  become HEARTBEAT frames: each worker's job loop beats over the wire, a
  silent worker raises the same stall verdict within ``2 × interval``,
  and a dropped connection is a crash.  Either way the running job fails
  with a typed, retryable error payload; the *client* owns the retry
  policy (``runtime/supervision.run_with_retry``), and a retried job is
  simply dispatched again over the workers still registered — a cluster
  that lost a worker re-runs the whole query on ``n - 1`` shards, which
  monotone set-semantics evaluation makes safe.

Jobs are serialized: one evaluation owns the whole worker set at a time
(queued submissions wait on an asyncio lock).  That is the same policy as
the pool runtime, which builds a fresh fork pool per query; lifting it —
multiplexing jobs over one worker set — only needs per-job engine state
worker-side and is noted in docs/architecture.md as future work.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import struct
import threading
import time
from typing import Optional

from ..runtime.faults import LinkFaultInjector
from .client import ClusterError
from .framing import (
    HEADER_SIZE,
    MAX_FRAME_SIZE,
    PROTOCOL_VERSION,
    Frame,
    FrameType,
    _HEADER,
    encode_frame,
    encode_json_frame,
)

__all__ = ["ClusterManager", "ManagerThread"]

#: How long the manager waits for per-shard STATS frames after a job
#: concludes before answering the client with whatever it has.
_STATS_GRACE = 5.0

#: Slack added to the client's evaluation timeout for the manager-side job
#: deadline: the client raises first, the manager merely cleans up.
_DEADLINE_SLACK = 10.0


class _JobFailure(Exception):
    """Internal: a job's terminal failure, shipped to the client as RESULT."""

    def __init__(
        self,
        kind: str,
        where: str = "",
        traceback_text: Optional[str] = None,
        exitcode: Optional[int] = None,
        stalled_for: float = 0.0,
    ) -> None:
        super().__init__(f"{kind}: {where}")
        self.kind = kind
        self.where = where
        self.traceback_text = traceback_text
        self.exitcode = exitcode
        self.stalled_for = stalled_for


class _WorkerLink:
    """One registered worker connection plus its transport counters."""

    def __init__(self, name: str, reader, writer) -> None:
        self.name = name
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.alive = True
        self.bytes_in = 0
        self.bytes_out = 0
        self.batches_in = 0  # BATCH frames this worker sent us
        self.batches_out = 0  # BATCH frames we forwarded to it
        self.reconnects = 0
        self.rtt_ms: Optional[float] = None
        self.pings = 0
        self._ping_sent_at: dict[int, float] = {}

    async def send(self, data: bytes) -> None:
        async with self.write_lock:
            self.writer.write(data)
            await self.writer.drain()
        self.bytes_out += len(data)

    def snapshot(self) -> dict:
        return {
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "batches_in": self.batches_in,
            "batches_out": self.batches_out,
            "reconnects": self.reconnects,
            "heartbeat_rtt_ms": self.rtt_ms,
            "pings": self.pings,
        }


class _Job:
    """One in-flight evaluation: shard → worker map plus supervision state."""

    def __init__(self, job_id: int, client_writer, workers: list[_WorkerLink]) -> None:
        self.id = job_id
        self.client_writer = client_writer
        self.workers = workers  # index == shard id
        self.n_shards = len(workers)
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.last_beat = {shard: time.monotonic() for shard in range(self.n_shards)}
        self.stats: dict[int, dict] = {}
        self.stats_done = asyncio.Event()
        self.injector: Optional[LinkFaultInjector] = None
        self.shard_of_worker = {link.name: shard for shard, link in enumerate(workers)}

    def fail(self, failure: _JobFailure) -> None:
        if not self.future.done():
            self.future.set_exception(failure)

    def finish(self, payload: dict) -> None:
        if not self.future.done():
            self.future.set_result(payload)


class ClusterManager:
    """The asyncio hub: run :meth:`serve` (or use :class:`ManagerThread`)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ping_interval: float = 0.5,
    ) -> None:
        self.host = host
        self.port = port
        self.ping_interval = ping_interval
        self.workers: dict[str, _WorkerLink] = {}
        self._reconnects: dict[str, int] = {}
        self._names = itertools.count()
        self._job_ids = itertools.count(1)
        self._ping_ids = itertools.count(1)
        self._job_lock = asyncio.Lock()
        self._jobs: dict[int, _Job] = {}
        self._job_of_client: dict = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._ping_task: Optional[asyncio.Task] = None
        self.jobs_dispatched = 0
        self.jobs_failed = 0

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start serving; resolves :attr:`port` when it was 0."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._ping_task = asyncio.ensure_future(self._ping_loop())

    async def stop(self) -> None:
        if self._ping_task is not None:
            self._ping_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for link in list(self.workers.values()):
            try:
                link.writer.close()
            except Exception:
                pass

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def transport_snapshot(self) -> dict:
        """Per-worker transport counters for the stats op / STATS_REQ."""
        return {
            "workers": {
                name: link.snapshot() for name, link in self.workers.items()
            },
            "registered": len(self.workers),
            "jobs_dispatched": self.jobs_dispatched,
            "jobs_failed": self.jobs_failed,
        }

    # ------------------------------------------------------------------
    async def _read_frame(self, reader, link: Optional[_WorkerLink] = None) -> Frame:
        header = await reader.readexactly(HEADER_SIZE)
        version, ftype, size = _HEADER.unpack(header)
        if size > MAX_FRAME_SIZE:
            raise asyncio.IncompleteReadError(b"", None)
        payload = await reader.readexactly(size)
        if link is not None:
            link.bytes_in += HEADER_SIZE + size
        return Frame(version, ftype, payload)

    async def _handle_connection(self, reader, writer) -> None:
        try:
            hello = await self._read_frame(reader)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            writer.close()
            return
        if hello.version != PROTOCOL_VERSION or hello.ftype != FrameType.HELLO:
            # A peer from another protocol revision (or a stray client
            # speaking something else entirely): refuse with a typed reason
            # before it can desync the stream.
            reason = (
                f"protocol version mismatch: manager speaks "
                f"{PROTOCOL_VERSION}, peer sent {hello.version}"
                if hello.version != PROTOCOL_VERSION
                else f"expected HELLO, got frame type {hello.ftype}"
            )
            try:
                writer.write(
                    encode_json_frame(FrameType.REJECT, {"reason": reason})
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        info = hello.json()
        role = info.get("role")
        if role == "worker":
            await self._serve_worker(info, reader, writer)
        elif role == "client":
            await self._serve_client(info, reader, writer)
        else:
            writer.write(
                encode_json_frame(
                    FrameType.REJECT, {"reason": f"unknown role {role!r}"}
                )
            )
            await writer.drain()
            writer.close()

    # ------------------------------------------------------------------
    # Worker side.
    # ------------------------------------------------------------------
    async def _serve_worker(self, info: dict, reader, writer) -> None:
        name = info.get("name") or f"worker-{next(self._names)}"
        link = _WorkerLink(name, reader, writer)
        link.reconnects = self._reconnects.get(name, -1) + 1
        self._reconnects[name] = link.reconnects
        self.workers[name] = link
        await link.send(
            encode_json_frame(
                FrameType.WELCOME, {"name": name, "workers": len(self.workers)}
            )
        )
        await self._ping_one(link)
        try:
            while True:
                frame = await self._read_frame(reader, link)
                await self._on_worker_frame(link, frame)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            link.alive = False
            if self.workers.get(name) is link:
                del self.workers[name]
            writer.close()
            # A worker that vanishes mid-job is a crash: fail the job with
            # the same verdict the pool's Supervisor reaches from a dead
            # Process handle.
            for job in list(self._jobs.values()):
                shard = job.shard_of_worker.get(name)
                if shard is not None:
                    job.fail(
                        _JobFailure("crash", where=f"{name} (shard {shard})")
                    )
                    job.stats_done.set()

    async def _on_worker_frame(self, link: _WorkerLink, frame: Frame) -> None:
        ftype = frame.ftype
        if ftype == FrameType.BATCH:
            link.batches_in += 1
            await self._relay_batch(link, frame)
        elif ftype == FrameType.HEARTBEAT:
            beat = frame.json()
            job = self._jobs.get(beat.get("j"))
            if job is not None:
                job.last_beat[beat.get("sh", 0)] = time.monotonic()
        elif ftype == FrameType.PONG:
            pong = frame.json()
            sent_at = link._ping_sent_at.pop(pong.get("i"), None)
            if sent_at is not None:
                link.rtt_ms = (time.monotonic() - sent_at) * 1000.0
        elif ftype == FrameType.DONE:
            done = frame.json()
            job = self._jobs.get(done.get("j"))
            if job is not None:
                job.finish(done)
        elif ftype == FrameType.ERROR:
            err = frame.json()
            job = self._jobs.get(err.get("j"))
            if job is not None:
                job.fail(
                    _JobFailure(
                        "crash",
                        where=err.get("where", link.name),
                        traceback_text=err.get("traceback"),
                    )
                )
        elif ftype == FrameType.STATS:
            stats = frame.json()
            job = self._jobs.get(stats.get("j"))
            if job is not None:
                job.stats[stats.get("sh", 0)] = stats.get("c", {})
                if len(job.stats) >= job.n_shards:
                    job.stats_done.set()

    async def _relay_batch(self, origin_link: _WorkerLink, frame: Frame) -> None:
        """Forward one cross-shard batch, applying any armed link faults."""
        head = json.loads(frame.payload.decode("utf-8"))
        job = self._jobs.get(head.get("j"))
        if job is None:
            return  # late traffic from a concluded/aborted job
        origin, dest = head.get("o", 0), head.get("d", 0)
        data = encode_frame(FrameType.BATCH, frame.payload)
        if job.injector is not None:
            action = job.injector.on_batch(origin, dest)
            if action == "blackhole":
                return
            if action == "drop_connection":
                origin_link.writer.close()  # reader EOF turns this into a crash
                return
            if isinstance(action, float):
                await asyncio.sleep(action)
            if action == "duplicate":
                dup_messages = [m for m in head.get("m", ()) if m[0] in ("tm", "ts")]
                await self._forward(job, dest, data)
                if dup_messages:
                    dup = dict(head)
                    dup["m"] = dup_messages
                    await self._forward(
                        job,
                        dest,
                        encode_json_frame(FrameType.BATCH, dup),
                    )
                return
        await self._forward(job, dest, data)

    async def _forward(self, job: _Job, dest: int, data: bytes) -> None:
        if not 0 <= dest < job.n_shards:
            return
        link = job.workers[dest]
        if not link.alive:
            return  # the crash path is already failing the job
        try:
            await link.send(data)
            link.batches_out += 1
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Client side.
    # ------------------------------------------------------------------
    async def _serve_client(self, info: dict, reader, writer) -> None:
        writer.write(
            encode_json_frame(
                FrameType.WELCOME, {"workers": sorted(self.workers)}
            )
        )
        await writer.drain()
        # Jobs run as tasks so this reader stays responsive: a client that
        # times out sends ABORT (or just disconnects), and the job must be
        # torn down *now* — not when the manager's own deadline fires —
        # or a queued retry would wait out the job lock and time out too.
        job_task: Optional[asyncio.Task] = None
        try:
            while True:
                frame = await self._read_frame(reader)
                if frame.ftype == FrameType.JOB:
                    job_task = asyncio.ensure_future(
                        self._run_job(frame, writer)
                    )
                elif frame.ftype == FrameType.ABORT:
                    job = self._job_of_client.get(writer)
                    if job is not None:
                        job.fail(_JobFailure("aborted", where="client abort"))
                    elif job_task is not None and not job_task.done():
                        job_task.cancel()  # still queued on the job lock
                elif frame.ftype == FrameType.STATS_REQ:
                    writer.write(
                        encode_json_frame(
                            FrameType.STATS_REP, self.transport_snapshot()
                        )
                    )
                    await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            job = self._job_of_client.pop(writer, None)
            if job is not None:
                job.fail(_JobFailure("aborted", where="client disconnected"))
            elif job_task is not None and not job_task.done():
                job_task.cancel()
            writer.close()

    @staticmethod
    def _split_job(payload: bytes) -> tuple[dict, bytes]:
        """A JOB payload is ``u32 header length + JSON header + pickle blob``."""
        (header_len,) = struct.unpack_from("!I", payload)
        header = json.loads(payload[4 : 4 + header_len].decode("utf-8"))
        return header, payload[4 + header_len :]

    async def _run_job(self, frame: Frame, client_writer) -> None:
        header, blob = self._split_job(frame.payload)
        # One evaluation owns the worker set at a time; queued jobs wait here.
        async with self._job_lock:
            await self._run_job_locked(header, blob, client_writer)

    async def _run_job_locked(self, header: dict, blob: bytes, client_writer) -> None:
        participants = [link for link in self.workers.values() if link.alive]
        desired = header.get("workers")
        if desired:
            participants = participants[: max(1, int(desired))]
        if not participants:
            await self._reply(
                client_writer, {"ok": False, "kind": "no_workers", "where": ""}
            )
            return
        job = _Job(next(self._job_ids), client_writer, participants)
        faults = header.get("faults")
        if faults:
            from ..runtime.faults import FaultPlan

            job.injector = LinkFaultInjector(FaultPlan(**faults))
        self._jobs[job.id] = job
        self._job_of_client[client_writer] = job
        self.jobs_dispatched += 1
        heartbeat_interval = header.get("heartbeat_interval")
        timeout = float(header.get("timeout", 120.0))
        watchdog = asyncio.ensure_future(
            self._watch_job(job, timeout + _DEADLINE_SLACK, heartbeat_interval)
        )
        try:
            worker_header = {
                "j": job.id,
                "n": job.n_shards,
                "hb": heartbeat_interval,
            }
            for shard, link in enumerate(participants):
                worker_header["sh"] = shard
                head = json.dumps(worker_header, separators=(",", ":")).encode()
                await link.send(
                    encode_frame(
                        FrameType.JOB,
                        struct.pack("!I", len(head)) + head + blob,
                    )
                )
            try:
                done = await job.future
            except _JobFailure as failure:
                self.jobs_failed += 1
                await self._abort_workers(job)
                await self._reply(
                    client_writer,
                    {
                        "ok": False,
                        "kind": failure.kind,
                        "where": failure.where,
                        "traceback": failure.traceback_text,
                        "exitcode": failure.exitcode,
                        "stalled_for": failure.stalled_for,
                        "heartbeat_interval": heartbeat_interval,
                    },
                )
                return
            # Success: stop the loops, gather per-shard counters, answer.
            for link in participants:
                if link.alive:
                    try:
                        await link.send(
                            encode_json_frame(FrameType.STOP, {"j": job.id})
                        )
                    except (ConnectionError, OSError):
                        pass
            try:
                await asyncio.wait_for(job.stats_done.wait(), _STATS_GRACE)
            except asyncio.TimeoutError:
                pass
            await self._reply(
                client_writer,
                {
                    "ok": True,
                    "answers": done.get("answers", []),
                    "seq": done.get("seq", 0),
                    "upto": done.get("upto", 0),
                    "workers": job.n_shards,
                    "shards": {str(k): v for k, v in sorted(job.stats.items())},
                    "transport": {
                        link.name: link.snapshot() for link in participants
                    },
                },
            )
        except asyncio.CancelledError:
            # The client vanished while this job was queued or running:
            # release the workers before propagating the cancellation.
            self.jobs_failed += 1
            await self._abort_workers(job)
            raise
        finally:
            watchdog.cancel()
            self._jobs.pop(job.id, None)
            self._job_of_client.pop(client_writer, None)

    async def _watch_job(
        self, job: _Job, deadline: float, heartbeat_interval: Optional[float]
    ) -> None:
        """The Supervisor's vital-signs poll, translated to the wire.

        Connection loss is handled by the per-worker reader (EOF == crash);
        this task covers the two silent failure modes — a wedged worker
        whose heartbeats stop, and a job that outlives the client's
        deadline (e.g. both sides of a partition blackhole).
        """
        start = time.monotonic()
        poll = (
            max(0.01, heartbeat_interval / 4.0) if heartbeat_interval else 0.25
        )
        while True:
            await asyncio.sleep(poll)
            now = time.monotonic()
            if now - start > deadline:
                job.fail(_JobFailure("timeout", where="manager deadline"))
                return
            if heartbeat_interval:
                stall_after = 2.0 * heartbeat_interval
                for shard, beat in job.last_beat.items():
                    if now - beat > stall_after:
                        link = job.workers[shard]
                        job.fail(
                            _JobFailure(
                                "stall",
                                where=f"{link.name} (shard {shard})",
                                stalled_for=now - beat,
                            )
                        )
                        return

    async def _abort_workers(self, job: _Job) -> None:
        for link in job.workers:
            if link.alive:
                try:
                    await link.send(
                        encode_json_frame(FrameType.ABORT, {"j": job.id})
                    )
                except (ConnectionError, OSError):
                    pass

    async def _reply(self, client_writer, payload: dict) -> None:
        try:
            client_writer.write(encode_json_frame(FrameType.RESULT, payload))
            await client_writer.drain()
        except (ConnectionError, OSError):
            pass  # client gone (timed out); nothing left to tell it

    # ------------------------------------------------------------------
    async def _ping_loop(self) -> None:
        """Periodic RTT probes — the transport-health side channel."""
        while True:
            await asyncio.sleep(self.ping_interval)
            for link in list(self.workers.values()):
                await self._ping_one(link)

    async def _ping_one(self, link: _WorkerLink) -> None:
        ping_id = next(self._ping_ids)
        link._ping_sent_at[ping_id] = time.monotonic()
        link.pings += 1
        try:
            await link.send(encode_json_frame(FrameType.PING, {"i": ping_id}))
        except (ConnectionError, OSError):
            pass


class ManagerThread:
    """A :class:`ClusterManager` on a daemon thread with its own event loop.

    The localhost harness and ``Session(runtime="cluster")`` embed the
    manager in the caller's process this way; ``repro serve`` does the
    same so one process can front both the query service and the cluster.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **kwargs) -> None:
        self.manager = ClusterManager(host, port, **kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    def start(self, timeout: float = 10.0) -> "ManagerThread":
        self._thread = threading.Thread(
            target=self._run, name="cluster-manager", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("cluster manager failed to start")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.run_until_complete(self.manager.start())
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.manager.stop())
            # Connection handlers for still-attached workers (an announced
            # manager does not own its workers' lifetimes) would otherwise
            # warn "Task was destroyed but it is pending" at loop close.
            # stop() closed their writers, so one more spin of the loop
            # lets each handler observe EOF and return; only a handler
            # wedged past the grace period gets cancelled.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            if pending:
                loop.run_until_complete(asyncio.wait(pending, timeout=1.0))
            for task in pending:
                if not task.done():
                    task.cancel()
            loop.close()

    @property
    def address(self) -> str:
        return self.manager.address

    def transport_snapshot(self) -> dict:
        return self.manager.transport_snapshot()

    def worker_count(self) -> int:
        return len(self.manager.workers)

    def wait_for_workers(self, count: int, timeout: float = 60.0) -> int:
        """Block until ``count`` workers are registered; returns the count.

        The announce path (``Session(cluster_listen=...)``, ``repro run/serve
        --cluster-listen``) uses this so the first query does not race the
        remote ``repro worker --connect`` processes dialing in.
        """
        deadline = time.monotonic() + timeout
        while self.worker_count() < count:
            if time.monotonic() > deadline:
                raise ClusterError(
                    f"only {self.worker_count()}/{count} workers registered "
                    f"with the manager at {self.address} within {timeout:.0f}s; "
                    f"start workers with: repro worker --connect {self.address}"
                )
            time.sleep(0.05)
        return self.worker_count()

    def stop(self, timeout: float = 5.0) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)
