"""Wire format of the cluster runtime: length-prefixed, versioned frames.

The transport's job is to carry the *existing* message vocabulary —
:class:`~repro.network.messages.MessageBatch` envelopes full of tuple
requests, :class:`TupleSet` rows, and end messages — between hosts without
changing what any of them means.  One frame on the wire is::

    +---------+-----------+----------------+------------------+
    | version |  type     |  payload size  |  payload         |
    | 1 byte  |  1 byte   |  4 bytes (BE)  |  size bytes      |
    +---------+-----------+----------------+------------------+

The version byte leads every frame so a peer speaking a different protocol
revision is detected on the *first* byte of the handshake and rejected with
a typed error instead of a confusing parse failure mid-stream.

Payloads are JSON (the container has no msgpack; JSON is the stdlib
fallback the format was specified to allow) except for ``JOB`` frames,
which append a pickled job spec (program + rule/goal graph + database)
after a JSON header.  Pickle is acceptable there because workers only ever
connect to a manager the operator started — the cluster protocol is a
trusted-peer protocol, like the multiprocessing queues it replaces — and
the hot path (BATCH frames) never touches pickle.

Datalog constants are almost always strings and ints, which JSON carries
natively; any other (hashable) constant rides in a tagged
``["p", <base64 pickle>]`` cell so the round-trip is lossless for every
value the in-process runtimes accept.
"""

from __future__ import annotations

import base64
import json
import pickle
import struct
from typing import Iterable, Optional, Sequence

from ..network.messages import (
    ComponentDone,
    EndConfirmed,
    EndMessage,
    EndNegative,
    EndNudge,
    EndRequest,
    Message,
    MessageBatch,
    PackagedTupleRequest,
    RelationRequest,
    TupleMessage,
    TupleRequest,
    TupleSet,
)

__all__ = [
    "PROTOCOL_VERSION",
    "Frame",
    "FrameError",
    "FrameReader",
    "FrameSocket",
    "encode_frame",
    "encode_messages",
    "decode_messages",
    "rows_to_wire",
    "rows_from_wire",
]

#: Bumped on any incompatible change to frames or payload schemas.  The
#: handshake (HELLO/WELCOME) rejects mismatched peers with a REJECT frame.
PROTOCOL_VERSION = 1

#: Frame header: version byte, type byte, unsigned big-endian payload size.
_HEADER = struct.Struct("!BBI")
HEADER_SIZE = _HEADER.size

#: Upper bound on a single frame payload — a corrupted length prefix must
#: not convince a reader to allocate gigabytes.
MAX_FRAME_SIZE = 1 << 30


# ----------------------------------------------------------------------
# Frame types.
# ----------------------------------------------------------------------
class FrameType:
    """The cluster protocol's frame vocabulary (one byte on the wire)."""

    HELLO = 1  # peer -> manager: register (role, name, protocol version)
    WELCOME = 2  # manager -> peer: registration accepted
    REJECT = 3  # manager -> peer: handshake refused (version mismatch, ...)
    JOB = 4  # client -> manager -> worker: an evaluation to run
    BATCH = 5  # worker <-> manager: one cross-shard MessageBatch
    DONE = 6  # driver worker -> manager: answers + root-stream accounting
    ERROR = 7  # worker -> manager: structured remote traceback
    ABORT = 8  # manager -> worker (or client -> manager): cancel a job
    STOP = 9  # manager -> worker: job concluded, report stats and idle
    HEARTBEAT = 10  # worker -> manager: per-loop liveness bump during a job
    PING = 11  # manager -> peer: RTT probe
    PONG = 12  # peer -> manager: RTT echo
    STATS = 13  # worker -> manager: per-shard counters after STOP
    RESULT = 14  # manager -> client: terminal job outcome
    STATS_REQ = 15  # client -> manager: cluster-wide transport counters
    STATS_REP = 16  # manager -> client: the counters


class FrameError(RuntimeError):
    """A malformed frame, an oversized payload, or a closed peer."""


class Frame:
    """One decoded frame: ``(version, ftype, payload bytes)``."""

    __slots__ = ("version", "ftype", "payload")

    def __init__(self, version: int, ftype: int, payload: bytes) -> None:
        self.version = version
        self.ftype = ftype
        self.payload = payload

    def json(self) -> dict:
        """Decode the payload as a JSON object."""
        return json.loads(self.payload.decode("utf-8"))


def encode_frame(
    ftype: int, payload: bytes = b"", version: int = PROTOCOL_VERSION
) -> bytes:
    """One wire frame: header + payload."""
    if len(payload) > MAX_FRAME_SIZE:
        raise FrameError(f"frame payload too large ({len(payload)} bytes)")
    return _HEADER.pack(version, ftype, len(payload)) + payload


def encode_json_frame(ftype: int, obj: dict, version: int = PROTOCOL_VERSION) -> bytes:
    """A frame whose payload is a compact JSON object."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return encode_frame(ftype, payload, version)


class FrameReader:
    """Incremental frame parser for a byte stream.

    Feed it whatever ``recv`` returned — a byte at a time, half a frame,
    three frames — and it yields complete frames as they materialize.  This
    is the partial-read recovery the tests exercise: TCP guarantees order,
    not message boundaries, so the reader must never assume a frame arrives
    whole.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        """Absorb ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: list[Frame] = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return frames
            version, ftype, size = _HEADER.unpack_from(self._buffer)
            if size > MAX_FRAME_SIZE:
                raise FrameError(f"frame payload too large ({size} bytes)")
            if len(self._buffer) < HEADER_SIZE + size:
                return frames
            payload = bytes(self._buffer[HEADER_SIZE : HEADER_SIZE + size])
            del self._buffer[: HEADER_SIZE + size]
            frames.append(Frame(version, ftype, payload))


class FrameSocket:
    """Blocking-socket framing: buffered reads, whole-frame writes.

    The worker side of the transport.  ``recv_frame`` loops on ``recv``
    until a full frame is in hand (partial reads are the norm on TCP);
    ``send_frame`` is safe to call from multiple threads — the job loop and
    the control loop share one connection — because the frame bytes are
    built first and shipped under a lock with ``sendall``.
    """

    def __init__(self, sock) -> None:
        import threading

        self.sock = sock
        self._reader = FrameReader()
        self._ready: list[Frame] = []
        self._send_lock = threading.Lock()
        self.bytes_in = 0
        self.bytes_out = 0

    def send_frame(
        self, ftype: int, payload: bytes = b"", version: int = PROTOCOL_VERSION
    ) -> None:
        data = encode_frame(ftype, payload, version)
        with self._send_lock:
            self.sock.sendall(data)
            self.bytes_out += len(data)

    def send_json(self, ftype: int, obj: dict) -> None:
        self.send_frame(ftype, json.dumps(obj, separators=(",", ":")).encode("utf-8"))

    def recv_frame(self, timeout: Optional[float] = None) -> Frame:
        """Next frame, blocking; raises :class:`FrameError` on EOF."""
        if self._ready:
            return self._ready.pop(0)
        self.sock.settimeout(timeout)
        while not self._ready:
            data = self.sock.recv(65536)
            if not data:
                raise FrameError("connection closed by peer")
            self.bytes_in += len(data)
            self._ready.extend(self._reader.feed(data))
        return self._ready.pop(0)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - defensive
            pass


# ----------------------------------------------------------------------
# Value / message codec.
# ----------------------------------------------------------------------
def _encode_value(value):
    """JSON-native scalars pass through; anything else is a tagged pickle."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return ["p", base64.b64encode(pickle.dumps(value)).decode("ascii")]


def _decode_value(cell):
    if isinstance(cell, list):
        return pickle.loads(base64.b64decode(cell[1]))
    return cell


def _encode_row(row: tuple) -> list:
    return [_encode_value(v) for v in row]


def _decode_row(cells: list) -> tuple:
    return tuple(_decode_value(c) for c in cells)


def rows_to_wire(rows: Iterable[tuple]) -> list:
    """Encode an iterable of rows deterministically (sorted for stability)."""
    return [_encode_row(row) for row in sorted(rows)]


def rows_from_wire(cells: list) -> list[tuple]:
    return [_decode_row(row) for row in cells]


#: Message class <-> wire tag.  The codec is exhaustive over the wire
#: vocabulary on purpose: an unknown message class is a programming error
#: we want loudly at encode time, not a silent drop.
def _enc_relation_request(m: RelationRequest) -> list:
    # Nested on purpose: the adornment is ONE argument cell.  Splatting it
    # into the argument list would make the decoder's ``a[0]`` truncate
    # every adornment of arity > 1.
    return [list(m.adornment)]


def _enc_tuple_request(m: TupleRequest) -> list:
    return [_encode_row(m.binding), m.seq]


def _enc_packaged(m: PackagedTupleRequest) -> list:
    return [[_encode_row(b) for b in m.bindings], m.seq]


def _enc_tuple_message(m: TupleMessage) -> list:
    return [_encode_row(m.row)]


def _enc_tuple_set(m: TupleSet) -> list:
    return [[_encode_row(r) for r in m.rows]]


def _enc_round(m) -> list:
    return [m.round_id]


_ENCODERS = {
    RelationRequest: ("rr", _enc_relation_request),
    TupleRequest: ("tr", _enc_tuple_request),
    PackagedTupleRequest: ("pr", _enc_packaged),
    TupleMessage: ("tm", _enc_tuple_message),
    TupleSet: ("ts", _enc_tuple_set),
    EndMessage: ("em", lambda m: [m.upto]),
    EndRequest: ("er", _enc_round),
    EndNegative: ("en", _enc_round),
    EndConfirmed: ("ec", _enc_round),
    ComponentDone: ("cd", _enc_round),
    EndNudge: ("nu", lambda m: []),
}

_DECODERS = {
    "rr": lambda s, r, a: RelationRequest(s, r, tuple(a[0])),
    "tr": lambda s, r, a: TupleRequest(s, r, _decode_row(a[0]), a[1]),
    "pr": lambda s, r, a: PackagedTupleRequest(
        s, r, tuple(_decode_row(b) for b in a[0]), a[1]
    ),
    "tm": lambda s, r, a: TupleMessage(s, r, _decode_row(a[0])),
    "ts": lambda s, r, a: TupleSet(s, r, frozenset(_decode_row(c) for c in a[0])),
    "em": lambda s, r, a: EndMessage(s, r, a[0]),
    "er": lambda s, r, a: EndRequest(s, r, a[0]),
    "en": lambda s, r, a: EndNegative(s, r, a[0]),
    "ec": lambda s, r, a: EndConfirmed(s, r, a[0]),
    "cd": lambda s, r, a: ComponentDone(s, r, a[0]),
    "nu": lambda s, r, a: EndNudge(s, r),
}


def encode_message(message: Message) -> list:
    """One message as a JSON-safe list: ``[tag, sender, receiver, *args]``."""
    try:
        tag, encoder = _ENCODERS[type(message)]
    except KeyError:
        raise FrameError(
            f"message class {type(message).__name__} has no wire encoding"
        ) from None
    return [tag, message.sender, message.receiver, *encoder(message)]


def decode_message(cells: list) -> Message:
    tag, sender, receiver = cells[0], cells[1], cells[2]
    try:
        decoder = _DECODERS[tag]
    except KeyError:
        raise FrameError(f"unknown message tag {tag!r} on the wire") from None
    return decoder(sender, receiver, cells[3:])


def encode_messages(messages: Sequence[Message]) -> list:
    return [encode_message(m) for m in messages]


def decode_messages(cells: list) -> list[Message]:
    return [decode_message(c) for c in cells]


def encode_batch(batch: MessageBatch) -> list:
    """A :class:`MessageBatch` as its wire form (origin + member list)."""
    return [batch.origin, encode_messages(batch.messages)]


def decode_batch(cells: list) -> MessageBatch:
    return MessageBatch(cells[0], tuple(decode_messages(cells[1])))
