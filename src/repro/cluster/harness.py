"""A localhost cluster-in-a-box: manager thread + worker processes.

CI (and ``Session(runtime="cluster")`` with no external address) needs the
full multi-host stack — TCP transport, registration, relay, supervision —
without real hosts.  The harness runs the manager on a daemon thread in
the calling process and each worker as a separate OS process connected
over loopback TCP, so every wire byte, handshake, heartbeat, and
reconnect path is the one real deployments exercise; only the network
latency is missing.

Workers are started with the ``spawn`` context: a fresh interpreter per
worker keeps the fork-safety of the caller (which is running an asyncio
event loop on the manager thread) out of the picture, and matches how a
real remote worker boots — ``repro worker --connect`` in a new process.

``kill_worker`` SIGKILLs a live worker mid-query — the chaos hook the
smoke benchmark and the worker-loss tests use.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from typing import Optional

from .client import ClusterClient
from .manager import ManagerThread
from .worker import worker_main

__all__ = ["ClusterHarness"]


class ClusterHarness:
    """``start()`` → a running manager with ``workers`` registered shards."""

    def __init__(
        self,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        start_timeout: float = 30.0,
    ) -> None:
        self.n_workers = max(1, workers)
        self.host = host
        self.port = port
        self.start_timeout = start_timeout
        self.manager: Optional[ManagerThread] = None
        self.processes: list[mp.process.BaseProcess] = []
        self._clients: list[ClusterClient] = []
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> "ClusterHarness":
        if self._started:
            return self
        self.manager = ManagerThread(self.host, self.port).start()
        context = mp.get_context("spawn")
        for index in range(self.n_workers):
            process = context.Process(
                target=worker_main,
                args=(self.manager.address,),
                kwargs={"name": f"worker-{index}"},
                daemon=True,
            )
            process.start()
            self.processes.append(process)
        deadline = time.monotonic() + self.start_timeout
        while self.manager.worker_count() < self.n_workers:
            if time.monotonic() > deadline:
                registered = self.manager.worker_count()
                self.stop()
                raise RuntimeError(
                    f"only {registered}/{self.n_workers} "
                    f"workers registered within {self.start_timeout}s"
                )
            time.sleep(0.02)
        self._started = True
        return self

    def __enter__(self) -> "ClusterHarness":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        if self.manager is None:
            raise RuntimeError("harness not started")
        return self.manager.address

    def client(self, pool_size: int = 2) -> ClusterClient:
        """A pooled client against this harness (closed by :meth:`stop`)."""
        cluster_client = ClusterClient(self.address, pool_size=pool_size)
        self._clients.append(cluster_client)
        return cluster_client

    def transport_snapshot(self) -> dict:
        if self.manager is None:
            raise RuntimeError("harness not started")
        return self.manager.transport_snapshot()

    def worker_count(self) -> int:
        return self.manager.worker_count() if self.manager else 0

    # ------------------------------------------------------------------
    def kill_worker(self, index: int) -> int:
        """SIGKILL worker ``index`` (no cleanup, no goodbye); returns its pid.

        The process stays dead — unlike a network flap there is no
        reconnect — so subsequent queries run over ``n - 1`` shards, which
        is exactly the capacity-degradation path retry must cover.
        """
        process = self.processes[index]
        pid = process.pid
        if pid is not None and process.is_alive():
            os.kill(pid, signal.SIGKILL)
            process.join(timeout=5.0)
        return pid or -1

    def stop(self) -> None:
        for cluster_client in self._clients:
            cluster_client.close()
        self._clients.clear()
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        self.processes.clear()
        if self.manager is not None:
            self.manager.stop()
            self.manager = None
        self._started = False
