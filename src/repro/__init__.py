"""repro — A Message Passing Framework for Logical Query Evaluation.

A from-scratch reproduction of Allen Van Gelder's SIGMOD 1986 paper: Datalog
(function-free Horn clause) query evaluation as a network of processes
communicating only by messages.

Quickstart
----------
>>> from repro import parse_program, evaluate
>>> program = parse_program('''
...     goal(Z) <- anc(ann, Z).
...     anc(X, Y) <- par(X, Y).
...     anc(X, Y) <- par(X, U), anc(U, Y).
...     par(ann, bob).  par(bob, cal).
... ''')
>>> sorted(evaluate(program).answers)
[('bob',), ('cal',)]

Layers
------
* :mod:`repro.core` — the Datalog kernel, adornments, SIP strategies, the
  rule/goal graph, hypergraphs/qual trees, monotone flow, the cost model;
* :mod:`repro.relational` — relations, algebra, the EDB, Yannakakis joins;
* :mod:`repro.network` — messages, node processes, scheduler, the Fig-2
  distributed termination protocol, and the evaluation engine;
* :mod:`repro.runtime` — the asyncio concurrent runtime;
* :mod:`repro.baselines` — naive, semi-naive, brute-force, tabled top-down;
* :mod:`repro.workloads` — the paper's example programs and EDB generators.
"""

from .core import (
    AdornedAtom,
    Atom,
    Constant,
    Program,
    Rule,
    Variable,
    atom,
    all_free_sip,
    build_rule_goal_graph,
    greedy_sip,
    has_monotone_flow,
    left_to_right_sip,
    parse_atom,
    parse_program,
    parse_rule,
    qual_tree_sip,
    rule_qual_tree,
)
from .cache import CacheStats, GraphCache
from .network import MessagePassingEngine, QueryResult, evaluate
from .runtime import evaluate_async
from .session import Session

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # kernel
    "Variable", "Constant", "Atom", "atom", "Rule", "Program", "AdornedAtom",
    "parse_program", "parse_rule", "parse_atom",
    # strategies & analysis
    "greedy_sip", "left_to_right_sip", "all_free_sip",
    "build_rule_goal_graph", "has_monotone_flow", "rule_qual_tree", "qual_tree_sip",
    # engines
    "evaluate", "evaluate_async", "MessagePassingEngine", "QueryResult",
    "Session", "GraphCache", "CacheStats",
]
