"""Concurrent runtimes for the message network (asyncio, multiprocessing, pool)."""

from .asyncio_engine import AsyncNetwork, AsyncQueryResult, evaluate_async, run_async
from .multiprocessing_engine import (
    MpNetwork,
    MpQueryResult,
    evaluate_multiprocessing,
)
from .pool_engine import PoolQueryResult, ShardRouter, evaluate_pool

__all__ = [
    "AsyncNetwork", "AsyncQueryResult", "evaluate_async", "run_async",
    "MpNetwork", "MpQueryResult", "evaluate_multiprocessing",
    "PoolQueryResult", "ShardRouter", "evaluate_pool",
]
