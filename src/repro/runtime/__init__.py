"""Concurrent runtimes for the message network (asyncio, multiprocessing, pool).

The multiprocess runtimes are *supervised*: see :mod:`repro.runtime
.supervision` for crash/stall detection, deterministic retry, and graceful
degradation, and :mod:`repro.runtime.faults` for the deterministic fault
injection the chaos suite drives them with.
"""

from .asyncio_engine import AsyncNetwork, AsyncQueryResult, evaluate_async, run_async
from .faults import (
    FaultInjectedError,
    FaultInjector,
    FaultPlan,
    ServiceFaultInjector,
    ServiceFaultPlan,
)
from .multiprocessing_engine import (
    MpNetwork,
    MpQueryResult,
    evaluate_multiprocessing,
)
from .pool_engine import PoolQueryResult, ShardRouter, evaluate_pool
from .supervision import (
    EvaluationTimeout,
    RetryPolicy,
    RuntimeFailure,
    Supervisor,
    WorkerCrashError,
    WorkerStallError,
)

__all__ = [
    "AsyncNetwork", "AsyncQueryResult", "evaluate_async", "run_async",
    "MpNetwork", "MpQueryResult", "evaluate_multiprocessing",
    "PoolQueryResult", "ShardRouter", "evaluate_pool",
    "FaultPlan", "FaultInjector", "FaultInjectedError",
    "ServiceFaultPlan", "ServiceFaultInjector",
    "RetryPolicy", "Supervisor", "RuntimeFailure",
    "WorkerCrashError", "WorkerStallError", "EvaluationTimeout",
]
