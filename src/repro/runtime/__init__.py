"""Concurrent runtimes for the message network (asyncio, multiprocessing)."""

from .asyncio_engine import AsyncNetwork, AsyncQueryResult, evaluate_async, run_async
from .multiprocessing_engine import (
    MpNetwork,
    MpQueryResult,
    evaluate_multiprocessing,
)

__all__ = [
    "AsyncNetwork", "AsyncQueryResult", "evaluate_async", "run_async",
    "MpNetwork", "MpQueryResult", "evaluate_multiprocessing",
]
