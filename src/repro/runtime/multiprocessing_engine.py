"""A multi-process runtime: one OS process per rule/goal graph node.

The strongest form of the paper's claim — "shared memory is not required,
making this approach suitable for distributed systems" — demonstrated
literally: every node runs in its own operating-system process with its own
address space; the only interaction is message passing over OS pipes
(``multiprocessing.Queue``), i.e. exactly the "existing operating system
features, such as scheduling, message queueing, and multi-tasking" the
paper appeals to.

The node logic is byte-for-byte the same as in the deterministic simulator
and the asyncio runtime.  Each worker process loops on its queue; the driver
worker ships the final answer set back over a result pipe when the
distributed termination machinery delivers its end message — the parent
process has no other way to know the computation finished.

Supervision: the paper's model assumes reliable processes; this runtime does
not.  Worker loops bump per-worker heartbeat slots and capture their own
exceptions as ``("error", node, traceback)`` payloads; the parent waits
under :class:`~repro.runtime.supervision.Supervisor`, so a dead or wedged
node process surfaces as a typed error in about a poll interval instead of
hanging out the global deadline, and ``retry=`` / ``fallback=`` recover by
whole-query re-execution (sound for monotone programs — see
``docs/architecture.md``).

Practical notes: workers are started with the ``fork`` method (each child
inherits a copy-on-write snapshot of the built network — including its own
private copy of the EDB, which is faithfully share-nothing); per-node OS
processes are, of course, wildly inefficient for small queries — this
runtime exists to *demonstrate* the architecture, the simulator to measure
it.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import traceback
from dataclasses import dataclass, field
from multiprocessing.sharedctypes import RawArray
from typing import Optional, Union

from ..core.adornment import AdornedAtom
from ..core.program import Program
from ..core.rulegoal import RuleGoalGraph, SipFactory, build_rule_goal_graph
from ..core.sips import greedy_sip
from ..network.engine import MessagePassingEngine
from ..network.messages import Message
from ..network.nodes import DRIVER_ID
from ..relational.database import Database
from .faults import FaultPlan, wedge_forever
from .supervision import (
    RetryPolicy,
    Supervisor,
    run_with_retry,
    shutdown_workers,
)

__all__ = ["MpQueryResult", "MpNetwork", "evaluate_multiprocessing"]

#: Sentinel placed on every queue to stop the worker loops.
_STOP = "__stop__"


@dataclass
class MpQueryResult:
    """Answers and coarse accounting from a multi-process run."""

    answers: set[tuple]
    completed: bool
    processes: int
    driver_last_seq_sent: int = 0  # driver root-stream accounting
    driver_last_upto_ended: int = 0
    # Supervision accounting (see PoolQueryResult for the same trio).
    attempts: int = 1
    degraded: bool = False
    failure_log: list[str] = field(default_factory=list)


class MpNetwork:
    """The channel fabric: one managed queue per node process.

    Manager queues live in a broker process and every ``put`` is a
    synchronous RPC, so a message is visible in the receiver's queue (and
    its ``qsize``) the moment ``send`` returns — the "message queuing" OS
    model the paper assumes, under which a queued-but-unprocessed tuple
    keeps ``empty_queues()`` false.  (A plain ``multiprocessing.Queue``
    buffers in a feeder thread, which would weaken that assumption.)
    """

    def __init__(self, manager, node_ids) -> None:
        self.queues = {node_id: manager.Queue() for node_id in node_ids}

    def send(self, message: Message) -> None:
        """Enqueue a message on the receiver's queue (crosses processes)."""
        self.queues[message.receiver].put(message)

    def pending_for(self, node_id: int) -> int:
        """The receiver's inbox length (a process asks only about its own)."""
        return self.queues[node_id].qsize()


def _worker_loop(
    node_id: int,
    network: MpNetwork,
    engine: MessagePassingEngine,
    result_queue,
    slot: int = 0,
    heartbeats=None,
    poll_interval: float = 0.25,
    fault_plan: Optional[FaultPlan] = None,
) -> None:
    """Run one node process until the stop sentinel arrives.

    The loop polls its queue on a bounded timeout and bumps its heartbeat
    slot every iteration, so a healthy worker — busy or blocked on input —
    always beats; exceptions from node code ship back as structured
    ``("error", node, traceback)`` payloads (the result queue is a manager
    proxy, so the put is a synchronous RPC and survives the hard exit).
    """
    process = engine.processes[node_id]
    label = "driver"
    if node_id != DRIVER_ID:
        try:
            label = engine.graph.node_label(node_id)
        except KeyError:  # pragma: no cover - replicas are pool-only today
            label = f"node:{node_id}"
    if node_id == DRIVER_ID:
        root_stream = process.feeders[engine.graph.root]
        process.on_complete = lambda: result_queue.put(
            (
                "done",
                sorted(process.answers),
                (root_stream.last_seq_sent, root_stream.last_upto_ended),
            )
        )
    injector = fault_plan.injector(slot) if fault_plan is not None else None
    inbox = network.queues[node_id]
    try:
        while True:
            if heartbeats is not None:
                heartbeats[slot] += 1
            try:
                message = inbox.get(timeout=poll_interval)
            except queue_module.Empty:
                continue
            if message == _STOP:
                return
            if injector is not None:
                injector.delay()
                action = injector.on_delivery(label)
                if action == "kill":  # pragma: no cover - the worker dies
                    os._exit(1)
                if action == "wedge":  # pragma: no cover - reaped by teardown
                    wedge_forever()
            process.handle(message, network)  # type: ignore[arg-type]
            process.on_idle_check(network)  # type: ignore[arg-type]
    except BaseException:  # pragma: no cover - exercised via chaos suite
        try:
            result_queue.put(("error", label, traceback.format_exc()))
        except Exception:
            pass
        os._exit(1)


def _mp_attempt(
    program: Program,
    graph: RuleGoalGraph,
    timeout: float,
    package_requests: bool,
    tuple_sets: bool,
    columnar: bool,
    database: Optional[Database],
    heartbeat_interval: Optional[float],
    fault_plan: Optional[FaultPlan],
) -> MpQueryResult:
    """One supervised execution: fork the node network, wait, tear down."""
    context = mp.get_context("fork")
    engine = MessagePassingEngine(
        program,
        validate_protocol=False,  # the oracle belongs to the simulator
        package_requests=package_requests,
        tuple_sets=tuple_sets,
        columnar=columnar,
        database=database,
        graph=graph,
    )
    manager = context.Manager()
    network = MpNetwork(manager, engine.processes.keys())
    result_queue = manager.Queue()
    node_ids = list(engine.processes)
    heartbeats = RawArray("q", len(node_ids))
    poll_interval = (
        max(0.01, heartbeat_interval / 4.0) if heartbeat_interval else 0.25
    )

    # Pose the query BEFORE forking.  ``driver.start`` bumps the root feeder
    # stream's sequence number *and* sends the opening relation request; the
    # bump must happen while the engine is still the pre-fork snapshot every
    # worker will inherit.  (Bumping after ``worker.start()`` mutates only
    # the parent's copy — the forked driver would then believe it never
    # asked for anything, accept the first end message at upto=0 as fully
    # caught up, and its stream accounting would disagree with the
    # simulator's.)  The request itself lands in a manager queue, which is
    # shared, so posing early loses nothing.
    engine.driver.start(network)

    workers = [
        context.Process(
            target=_worker_loop,
            args=(
                node_id,
                network,
                engine,
                result_queue,
                slot,
                heartbeats,
                poll_interval,
                fault_plan,
            ),
            daemon=True,
        )
        for slot, node_id in enumerate(node_ids)
    ]
    for worker in workers:
        worker.start()

    def worker_label(slot: int) -> str:
        node_id = node_ids[slot]
        if node_id == DRIVER_ID:
            return "driver"
        try:
            return engine.graph.node_label(node_id)
        except KeyError:  # pragma: no cover - replicas are pool-only today
            return f"node:{node_id}"

    supervisor = Supervisor(
        workers,
        result_queue,
        heartbeats=heartbeats,
        heartbeat_interval=heartbeat_interval,
        labels=[worker_label(slot) for slot in range(len(node_ids))],
        what="distributed evaluation",
    )
    try:
        _, answers, driver_accounting = supervisor.wait(timeout)
    finally:
        # Teardown ordering matters: STOP sentinels first (non-blocking —
        # a broken manager queue must not wedge the caller), then bounded
        # joins with terminate→kill escalation, and ``manager.shutdown()``
        # strictly last, after no worker can still touch a manager proxy.
        def send_stop() -> None:
            for slot, node_id in enumerate(node_ids):
                if fault_plan is not None and fault_plan.drop_stop_for == slot:
                    continue  # injected fault: this worker never hears STOP
                try:
                    network.queues[node_id].put_nowait(_STOP)
                except Exception:  # dead manager/full proxy: escalation reaps
                    pass

        shutdown_workers(workers, send_stop)
        try:
            manager.shutdown()
        except Exception:  # pragma: no cover - defensive cleanup
            pass

    return MpQueryResult(
        answers={tuple(row) for row in answers},
        completed=True,
        processes=len(workers),
        driver_last_seq_sent=driver_accounting[0],
        driver_last_upto_ended=driver_accounting[1],
    )


def evaluate_multiprocessing(
    program: Program,
    sip_factory: SipFactory = greedy_sip,
    query_goal: Optional[AdornedAtom] = None,
    timeout: float = 120.0,
    coalesce: bool = False,
    package_requests: bool = False,
    tuple_sets: bool = True,
    columnar: bool = True,
    planner: str = "static",
    retry: Union[RetryPolicy, int, None] = None,
    fallback: str = "none",
    heartbeat_interval: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    graph: Optional[RuleGoalGraph] = None,
    database: Optional[Database] = None,
) -> MpQueryResult:
    """Evaluate the query with one supervised OS process per graph node.

    ``TupleSet`` messages (when ``tuple_sets`` is on) pickle and ship over
    the managed queues like any other message — one RPC then carries a
    whole answer set.

    Fault tolerance mirrors :func:`~repro.runtime.pool_engine.evaluate_pool`:
    a dead node process raises ``WorkerCrashError`` (with the remote
    traceback when available), a stalled heartbeat raises
    ``WorkerStallError`` within ``2 × heartbeat_interval``, the global
    deadline raises ``EvaluationTimeout`` (a ``TimeoutError``); ``retry``
    re-executes the whole query (safe by monotonicity) reusing the prebuilt
    ``graph``, and ``fallback="inprocess"`` degrades to the single-process
    scheduler after retries are exhausted, flagged on the result.
    """
    if fallback not in ("none", "inprocess"):
        raise ValueError(f"unknown fallback {fallback!r}; use 'none' or 'inprocess'")
    policy = RetryPolicy.of(retry)
    plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
    if planner not in ("static", "cost"):
        raise ValueError(f"unknown planner {planner!r} (expected 'static' or 'cost')")
    if graph is None:
        if planner == "cost":
            from ..core.planner import CostPlanner

            cost_planner = CostPlanner.from_database(database)
            sip_factory = cost_planner.sip_factory()
        graph = build_rule_goal_graph(
            program, sip_factory, query_goal=query_goal, coalesce=coalesce
        )
        if planner == "cost":
            graph.plan_report = cost_planner.report

    def attempt(number: int) -> MpQueryResult:
        return _mp_attempt(
            program,
            graph,
            timeout,
            package_requests,
            tuple_sets,
            columnar,
            database,
            heartbeat_interval,
            plan.for_attempt(number) if plan is not None else None,
        )

    def degraded_fallback() -> MpQueryResult:
        engine = MessagePassingEngine(
            program,
            package_requests=package_requests,
            tuple_sets=tuple_sets,
            columnar=columnar,
            database=database,
            graph=graph,
        )
        in_process = engine.run()
        stream = engine.driver.feeders[engine.graph.root]
        return MpQueryResult(
            answers=set(in_process.answers),
            completed=in_process.completed,
            processes=0,  # no process network answered this query
            driver_last_seq_sent=stream.last_seq_sent,
            driver_last_upto_ended=stream.last_upto_ended,
        )

    result, attempts, degraded, failure_log = run_with_retry(
        attempt,
        policy,
        degraded_fallback if fallback == "inprocess" else None,
    )
    result.attempts = attempts
    result.degraded = degraded
    result.failure_log = list(failure_log)
    return result
