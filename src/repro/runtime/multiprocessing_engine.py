"""A multi-process runtime: one OS process per rule/goal graph node.

The strongest form of the paper's claim — "shared memory is not required,
making this approach suitable for distributed systems" — demonstrated
literally: every node runs in its own operating-system process with its own
address space; the only interaction is message passing over OS pipes
(``multiprocessing.Queue``), i.e. exactly the "existing operating system
features, such as scheduling, message queueing, and multi-tasking" the
paper appeals to.

The node logic is byte-for-byte the same as in the deterministic simulator
and the asyncio runtime.  Each worker process loops on its queue; the driver
worker ships the final answer set back over a result pipe when the
distributed termination machinery delivers its end message — the parent
process has no other way to know the computation finished.

Practical notes: workers are started with the ``fork`` method (each child
inherits a copy-on-write snapshot of the built network — including its own
private copy of the EDB, which is faithfully share-nothing); per-node OS
processes are, of course, wildly inefficient for small queries — this
runtime exists to *demonstrate* the architecture, the simulator to measure
it.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
from dataclasses import dataclass
from typing import Optional

from ..core.adornment import AdornedAtom
from ..core.program import Program
from ..core.rulegoal import SipFactory
from ..core.sips import greedy_sip
from ..network.engine import MessagePassingEngine
from ..network.messages import Message
from ..network.nodes import DRIVER_ID

__all__ = ["MpQueryResult", "MpNetwork", "evaluate_multiprocessing"]

#: Sentinel placed on every queue to stop the worker loops.
_STOP = "__stop__"


@dataclass
class MpQueryResult:
    """Answers and coarse accounting from a multi-process run."""

    answers: set[tuple]
    completed: bool
    processes: int
    driver_last_seq_sent: int = 0  # driver root-stream accounting
    driver_last_upto_ended: int = 0


class MpNetwork:
    """The channel fabric: one managed queue per node process.

    Manager queues live in a broker process and every ``put`` is a
    synchronous RPC, so a message is visible in the receiver's queue (and
    its ``qsize``) the moment ``send`` returns — the "message queuing" OS
    model the paper assumes, under which a queued-but-unprocessed tuple
    keeps ``empty_queues()`` false.  (A plain ``multiprocessing.Queue``
    buffers in a feeder thread, which would weaken that assumption.)
    """

    def __init__(self, manager, node_ids) -> None:
        self.queues = {node_id: manager.Queue() for node_id in node_ids}

    def send(self, message: Message) -> None:
        """Enqueue a message on the receiver's queue (crosses processes)."""
        self.queues[message.receiver].put(message)

    def pending_for(self, node_id: int) -> int:
        """The receiver's inbox length (a process asks only about its own)."""
        return self.queues[node_id].qsize()


def _worker_loop(node_id: int, network: MpNetwork, engine: MessagePassingEngine,
                 result_queue: mp.Queue) -> None:
    """Run one node process until the stop sentinel arrives."""
    process = engine.processes[node_id]
    if node_id == DRIVER_ID:
        root_stream = process.feeders[engine.graph.root]
        process.on_complete = lambda: result_queue.put(
            (
                "done",
                sorted(process.answers),
                (root_stream.last_seq_sent, root_stream.last_upto_ended),
            )
        )
    inbox = network.queues[node_id]
    while True:
        message = inbox.get()
        if message == _STOP:
            return
        process.handle(message, network)  # type: ignore[arg-type]
        process.on_idle_check(network)  # type: ignore[arg-type]


def evaluate_multiprocessing(
    program: Program,
    sip_factory: SipFactory = greedy_sip,
    query_goal: Optional[AdornedAtom] = None,
    timeout: float = 120.0,
    coalesce: bool = False,
    package_requests: bool = False,
    tuple_sets: bool = True,
) -> MpQueryResult:
    """Evaluate the query with one OS process per graph node.

    Raises ``TimeoutError`` if the distributed computation does not deliver
    its end message within ``timeout`` seconds.  ``TupleSet`` messages (when
    ``tuple_sets`` is on) pickle and ship over the managed queues like any
    other message — one RPC then carries a whole answer set.
    """
    context = mp.get_context("fork")
    engine = MessagePassingEngine(
        program,
        sip_factory=sip_factory,
        query_goal=query_goal,
        validate_protocol=False,  # the oracle belongs to the simulator
        coalesce=coalesce,
        package_requests=package_requests,
        tuple_sets=tuple_sets,
    )
    manager = context.Manager()
    network = MpNetwork(manager, engine.processes.keys())
    result_queue = manager.Queue()

    # Pose the query BEFORE forking.  ``driver.start`` bumps the root feeder
    # stream's sequence number *and* sends the opening relation request; the
    # bump must happen while the engine is still the pre-fork snapshot every
    # worker will inherit.  (Bumping after ``worker.start()`` mutates only
    # the parent's copy — the forked driver would then believe it never
    # asked for anything, accept the first end message at upto=0 as fully
    # caught up, and its stream accounting would disagree with the
    # simulator's.)  The request itself lands in a manager queue, which is
    # shared, so posing early loses nothing.
    engine.driver.start(network)

    workers = [
        context.Process(
            target=_worker_loop,
            args=(node_id, network, engine, result_queue),
            daemon=True,
        )
        for node_id in engine.processes
    ]
    for worker in workers:
        worker.start()

    try:
        kind, answers, driver_accounting = result_queue.get(timeout=timeout)
    except queue_module.Empty as exc:
        raise TimeoutError(
            f"distributed evaluation did not complete within {timeout}s"
        ) from exc
    finally:
        for node_id in network.queues:
            network.queues[node_id].put(_STOP)
        for worker in workers:
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - cleanup path
                worker.terminate()
        manager.shutdown()

    assert kind == "done"
    return MpQueryResult(
        answers={tuple(row) for row in answers},
        completed=True,
        processes=len(workers),
        driver_last_seq_sent=driver_accounting[0],
        driver_last_upto_ended=driver_accounting[1],
    )
