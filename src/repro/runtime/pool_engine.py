"""A pooled multiprocessing runtime: N shard workers over batched channels.

Where :mod:`repro.runtime.multiprocessing_engine` demonstrates the paper's
architecture literally — one OS process per rule/goal node, one managed queue
per process, one synchronous RPC per message — this runtime is the scaling
path: a fixed pool of worker processes (default ``os.cpu_count()``), each
hosting a *shard* of node processes, exchanging :class:`MessageBatch`
envelopes so the pickle + queue cost of IPC amortizes over whole bursts of
tuples instead of being paid per tuple.

Three ideas carry the design:

* **Sharding.**  ``repro.network.engine.assign_shards`` keeps every strong
  component whole on one shard (so termination waves and the dense recursive
  tuple traffic are intra-process, delivered through a plain deque), spreads
  EDB leaf replicas across shards (the engine's ``edb_shards`` partitioning:
  each replica owns a hash partition of the "d" bindings, so semijoin
  fan-out parallelizes), and round-robins the rest.

* **Batched channels.**  Cross-shard messages accumulate in a per-destination
  buffer and travel as one :class:`MessageBatch` per queue ``put`` — flushed
  when the buffer reaches ``batch_size`` or when the worker goes idle.  On
  arrival, adjacent same-channel tuple requests are coalesced into
  :class:`~repro.network.messages.PackagedTupleRequest` messages (the
  footnote-2 machinery every producer already serves), so a fan-out burst is
  also *handled* in one step, not just transported in one.

* **Eager visibility.**  Section 3.2's ``empty_queues()`` assumes a queued
  message is visible the instant it is sent.  Batching must not weaken that:
  a pair of single-writer shared counters per (origin, destination) shard
  pair — ``sent`` bumped by the sender the moment a message enters a buffer,
  ``received`` bumped by the receiver when the batch is ingested — makes
  ``pending_for`` a (conservative, shard-granular) upper bound that is
  nonzero from the instant a message exists anywhere outside the receiving
  worker.  A queued *batch* therefore keeps ``empty_queues()`` false exactly
  like a queued tuple, which is all the Section 3.2 termination argument
  needs (see docs/architecture.md).

Cross-component completion never relies on queue visibility at all: feeder
streams are per-replica and end-message accounting is exact, so the only
traffic the counters guard is the window between a send and the ingest on
the far side.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.sharedctypes import RawArray
from typing import Optional, Union

from ..core.adornment import AdornedAtom
from ..core.program import Program
from ..core.rulegoal import RuleGoalGraph, SipFactory, build_rule_goal_graph
from ..core.sips import greedy_sip
from ..network.engine import MessagePassingEngine, assign_shards
from ..network.messages import (
    COMPUTATION_TYPES,
    Message,
    MessageBatch,
    coalesce_batch,
    logical_size,
)
from ..network.nodes import DRIVER_ID
from ..relational.database import Database
from .faults import FaultPlan, wedge_forever
from .supervision import (
    RetryPolicy,
    Supervisor,
    run_with_retry,
    shutdown_workers,
)

__all__ = ["PoolQueryResult", "ShardRouter", "evaluate_pool"]

#: Sentinel placed on every shard inbox to stop the worker loops.
_STOP = "__stop__"

#: Consecutive protocol-only deliveries after which a worker briefly polls
#: its OS inbox instead of spinning: a leader whose members wait on remote
#: (cross-shard) work re-probes on every negative wave, and without remote
#: input those waves are pure local CPU burn.  The poll yields the core to
#: the worker actually producing the awaited messages; liveness is
#: unaffected because the poll times out and the spin resumes.
_PROTOCOL_SPIN_LIMIT = 64
_PROTOCOL_SPIN_POLL = 0.001  # seconds


@dataclass
class PoolQueryResult:
    """Answers plus transport accounting from a pooled run."""

    answers: set[tuple]
    completed: bool
    workers: int
    cross_messages: int  # messages that crossed a shard boundary
    cross_batches: int  # queue puts used to carry them
    driver_last_seq_sent: int  # driver root-stream accounting (parity checks)
    driver_last_upto_ended: int
    # Supervision accounting: how many executions it took, whether the
    # answer came from the in-process fallback, and what went wrong.
    attempts: int = 1
    degraded: bool = False
    failure_log: list[str] = field(default_factory=list)

    @property
    def batching_factor(self) -> float:
        """Average messages per queue operation (the IPC amortization)."""
        if not self.cross_batches:
            return 0.0
        return self.cross_messages / self.cross_batches


class ShardRouter:
    """The channel fabric as seen by the node processes of one shard worker.

    Implements the two operations node logic requires of a network — ``send``
    and ``pending_for`` — over a hybrid fabric: intra-shard messages land on
    a local deque (exact per-node pending counts), cross-shard messages are
    buffered per destination and shipped as :class:`MessageBatch` envelopes.

    ``sent``/``received``/``batches`` are flat ``n_shards × n_shards``
    shared arrays indexed ``origin * n_shards + destination``.  Every slot
    has exactly one writer — ``sent``/``batches`` the origin worker,
    ``received`` the destination worker — so plain (aligned) increments need
    no locks; readers may observe a momentarily stale sum, which only ever
    *overstates* pending work and therefore only delays, never falsifies, a
    termination conclusion.
    """

    def __init__(
        self,
        shard_id: int,
        shard_of: dict[int, int],
        inboxes: list,
        sent,
        received,
        batches,
        n_shards: int,
        batch_size: int,
        tuple_sets: bool = True,
    ) -> None:
        self.shard_id = shard_id
        self.shard_of = shard_of
        self.inboxes = inboxes
        self.sent = sent
        self.received = received
        self.batches = batches
        self.n_shards = n_shards
        self.batch_size = max(1, batch_size)
        self.tuple_sets = tuple_sets
        self.local: deque[Message] = deque()
        self.local_pending: dict[int, int] = {}
        self.buffers: dict[int, list[Message]] = {
            dest: [] for dest in range(n_shards) if dest != shard_id
        }

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Deliver locally or buffer for a batched cross-shard ship."""
        dest = self.shard_of[message.receiver]
        if dest == self.shard_id:
            self.local.append(message)
            self.local_pending[message.receiver] = (
                self.local_pending.get(message.receiver, 0) + 1
            )
            return
        # Visibility precedes transport: the receiving shard's
        # ``pending_for`` must count this message from this instant on.
        # Counts are in *logical* tuples (a TupleSet weighs len(rows)) so
        # the Section 3.2 sent/received accounting keeps its meaning.
        self.sent[self.shard_id * self.n_shards + dest] += logical_size(message)
        buffer = self.buffers[dest]
        buffer.append(message)
        if len(buffer) >= self.batch_size:
            self._flush_one(dest)

    def _flush_one(self, dest: int) -> None:
        buffer = self.buffers[dest]
        if not buffer:
            return
        self.buffers[dest] = []
        self.batches[self.shard_id * self.n_shards + dest] += 1
        self.inboxes[dest].put(MessageBatch(self.shard_id, tuple(buffer)))

    def flush(self) -> None:
        """Ship every buffered batch (called when the worker goes idle)."""
        for dest in self.buffers:
            self._flush_one(dest)

    def ingest(self, batch: MessageBatch) -> None:
        """Unpack an arrived batch onto the local deque (FIFO preserved).

        Adjacent same-channel requests coalesce into packaged requests and —
        when set emission is on — adjacent same-channel rows merge into
        :class:`~repro.network.messages.TupleSet` messages, so a transported
        burst is *handled* set-at-a-time, not unpacked row by row.  The
        ``received`` counter mirrors the sender's logical accounting.
        """
        self.received[batch.origin * self.n_shards + self.shard_id] += logical_size(
            batch
        )
        for message in coalesce_batch(batch.messages, tuple_sets=self.tuple_sets):
            self.local.append(message)
            self.local_pending[message.receiver] = (
                self.local_pending.get(message.receiver, 0) + 1
            )

    # ------------------------------------------------------------------
    def pending_for(self, node_id: int) -> int:
        """Inbox length for ``empty_queues()``: exact locally, conservative
        (shard-granular) for traffic still in transit toward this shard."""
        pending = self.local_pending.get(node_id, 0)
        column = self.shard_id
        n = self.n_shards
        for origin in range(n):
            if origin == column:
                continue
            pending += self.sent[origin * n + column] - self.received[origin * n + column]
        return pending


def _shard_worker(
    shard_id: int,
    engine: MessagePassingEngine,
    shard_of: dict[int, int],
    inboxes: list,
    sent,
    received,
    batches,
    n_shards: int,
    batch_size: int,
    result_queue,
    tuple_sets: bool = True,
    heartbeats=None,
    poll_interval: float = 0.25,
    fault_plan: Optional[FaultPlan] = None,
) -> None:
    """Supervised entry point: capture worker exceptions as structured payloads.

    Any exception escaping the loop (node code, fault injection, transport)
    is shipped to the driver as ``("error", where, traceback)`` — flushed
    through the queue's feeder thread before the hard exit, so the parent
    re-raises a :class:`WorkerCrashError` with the remote traceback instead
    of timing out against a silently dead worker.
    """
    try:
        _shard_worker_loop(
            shard_id,
            engine,
            shard_of,
            inboxes,
            sent,
            received,
            batches,
            n_shards,
            batch_size,
            result_queue,
            tuple_sets,
            heartbeats,
            poll_interval,
            fault_plan,
        )
    except BaseException:  # pragma: no cover - exercised via chaos suite
        try:
            result_queue.put(
                ("error", f"shard {shard_id}", traceback.format_exc())
            )
            result_queue.close()
            result_queue.join_thread()  # flush the payload before dying
        except Exception:
            pass
        os._exit(1)


def _shard_worker_loop(
    shard_id: int,
    engine: MessagePassingEngine,
    shard_of: dict[int, int],
    inboxes: list,
    sent,
    received,
    batches,
    n_shards: int,
    batch_size: int,
    result_queue,
    tuple_sets: bool,
    heartbeats,
    poll_interval: float,
    fault_plan: Optional[FaultPlan],
) -> None:
    """Run one shard's node processes until the stop sentinel arrives."""
    router = ShardRouter(
        shard_id,
        shard_of,
        inboxes,
        sent,
        received,
        batches,
        n_shards,
        batch_size,
        tuple_sets,
    )
    processes = engine.processes
    hosted = [
        process
        for node_id, process in processes.items()
        if shard_of[node_id] == shard_id
    ]
    injector = fault_plan.injector(shard_id) if fault_plan is not None else None
    labels: dict[int, str] = {}
    if injector is not None:
        for node_id in processes:
            if node_id == DRIVER_ID:
                labels[node_id] = "driver"
            else:
                try:
                    labels[node_id] = engine.graph.node_label(node_id)
                except KeyError:  # EDB replicas live outside the graph
                    labels[node_id] = f"edb-replica:{node_id}"
    if shard_of[DRIVER_ID] == shard_id:
        driver = engine.driver
        root_stream = driver.feeders[engine.graph.root]

        def on_complete() -> None:
            result_queue.put(
                (
                    "done",
                    sorted(driver.answers),
                    (root_stream.last_seq_sent, root_stream.last_upto_ended),
                )
            )

        driver.on_complete = on_complete
        # Pose the query from inside the worker that owns the driver — the
        # feeder sequence bump and the opening relation request happen in
        # the same address space, so no state desyncs across the fork.
        driver.start(router)  # type: ignore[arg-type]

    inbox = inboxes[shard_id]
    protocol_spin = 0
    while True:
        # 0) Heartbeat: one bump per loop iteration.  Idle iterations bump
        #    too (the blocking get below polls at ``poll_interval``), so a
        #    healthy worker — busy or blocked on input — always beats; only
        #    a worker wedged inside a handler goes silent.
        if heartbeats is not None:
            heartbeats[shard_id] += 1

        # 1) Drain the OS inbox without blocking, so arriving work is
        #    interleaved with local delivery and pending counts stay fresh.
        while True:
            try:
                item = inbox.get_nowait()
            except queue_module.Empty:
                break
            if item == _STOP:
                return
            if injector is not None:
                injector.delay()
            router.ingest(item)

        # 2) Deliver one local message.
        if router.local:
            if protocol_spin >= _PROTOCOL_SPIN_LIMIT:
                protocol_spin = 0
                router.flush()
                try:
                    item = inbox.get(timeout=_PROTOCOL_SPIN_POLL)
                except queue_module.Empty:
                    item = None
                if item is not None:
                    if item == _STOP:
                        return
                    if injector is not None:
                        injector.delay()
                    router.ingest(item)
            message = router.local.popleft()
            router.local_pending[message.receiver] -= 1
            protocol_spin = (
                0 if isinstance(message, COMPUTATION_TYPES) else protocol_spin + 1
            )
            if injector is not None:
                action = injector.on_delivery(labels.get(message.receiver))
                if action == "kill":  # pragma: no cover - the worker dies
                    os._exit(1)
                if action == "wedge":  # pragma: no cover - reaped by teardown
                    wedge_forever()
            process = processes[message.receiver]
            process.handle(message, router)  # type: ignore[arg-type]
            process.on_idle_check(router)  # type: ignore[arg-type]
            continue

        # 3) Idle: flush request packaging, give every hosted node an idle
        #    check (in the simulator each delivery checks only its receiver,
        #    and the receiver of this shard's *last* delivery may not be the
        #    leader whose probe is now due), ship buffered batches, then
        #    block for remote input.  The block is a bounded poll rather
        #    than an indefinite get so the heartbeat above keeps beating
        #    while the worker waits.
        for process in hosted:
            if process._request_buffer:
                process.flush_requests(router)  # type: ignore[arg-type]
        for process in hosted:
            process.on_idle_check(router)  # type: ignore[arg-type]
        router.flush()
        if router.local:
            continue
        try:
            item = inbox.get(timeout=poll_interval)
        except queue_module.Empty:
            continue
        if item == _STOP:
            return
        if injector is not None:
            injector.delay()
        router.ingest(item)


def _pool_attempt(
    program: Program,
    graph: RuleGoalGraph,
    n_shards: int,
    batch_size: int,
    timeout: float,
    package_requests: bool,
    replicas: int,
    tuple_sets: bool,
    columnar: bool,
    database: Optional[Database],
    heartbeat_interval: Optional[float],
    fault_plan: Optional[FaultPlan],
) -> PoolQueryResult:
    """One supervised execution: fork, wait under the supervisor, tear down."""
    context = mp.get_context("fork")
    # A fresh engine per attempt: worker-side state (the driver's posed
    # query, node relations) dies with the attempt's forks, and the shared
    # prebuilt graph makes reconstruction a dictionary lookup, not a parse.
    engine = MessagePassingEngine(
        program,
        validate_protocol=False,  # the oracle belongs to the simulator
        package_requests=package_requests,
        edb_shards=replicas,
        tuple_sets=tuple_sets,
        columnar=columnar,
        database=database,
        graph=graph,
    )
    shard_of = assign_shards(engine, n_shards)

    inboxes = [context.Queue() for _ in range(n_shards)]
    result_queue = context.Queue()
    # Single-writer transport counters (see ShardRouter) plus one heartbeat
    # slot per worker: allocated before the fork so every worker maps the
    # same shared memory.  Heartbeats are supervision-only — they are never
    # read by ``pending_for``/``empty_queues()``, so the Section 3.2
    # visibility invariant is untouched (see docs/protocol.md).
    sent = RawArray("q", n_shards * n_shards)
    received = RawArray("q", n_shards * n_shards)
    batches = RawArray("q", n_shards * n_shards)
    heartbeats = RawArray("q", n_shards)
    poll_interval = (
        max(0.01, heartbeat_interval / 4.0) if heartbeat_interval else 0.25
    )

    workers_list = [
        context.Process(
            target=_shard_worker,
            args=(
                shard_id,
                engine,
                shard_of,
                inboxes,
                sent,
                received,
                batches,
                n_shards,
                batch_size,
                result_queue,
                tuple_sets,
                heartbeats,
                poll_interval,
                fault_plan,
            ),
            daemon=True,
        )
        for shard_id in range(n_shards)
    ]
    for worker in workers_list:
        worker.start()

    supervisor = Supervisor(
        workers_list,
        result_queue,
        heartbeats=heartbeats,
        heartbeat_interval=heartbeat_interval,
        labels=[f"shard {shard_id}" for shard_id in range(n_shards)],
        what="pooled evaluation",
    )
    try:
        _, answers, driver_accounting = supervisor.wait(timeout)
    finally:
        def send_stop() -> None:
            for shard_id, inbox in enumerate(inboxes):
                if fault_plan is not None and fault_plan.drop_stop_for == shard_id:
                    continue  # injected fault: this worker never hears STOP
                try:
                    inbox.put_nowait(_STOP)
                except Exception:  # full/closed/broken: escalation reaps it
                    pass

        shutdown_workers(workers_list, send_stop)
        for q in [*inboxes, result_queue]:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # pragma: no cover - defensive cleanup
                pass

    total_sent = sum(sent)
    total_batches = sum(batches)
    return PoolQueryResult(
        answers={tuple(row) for row in answers},
        completed=True,
        workers=n_shards,
        cross_messages=total_sent,
        cross_batches=total_batches,
        driver_last_seq_sent=driver_accounting[0],
        driver_last_upto_ended=driver_accounting[1],
    )


def evaluate_pool(
    program: Program,
    sip_factory: SipFactory = greedy_sip,
    query_goal: Optional[AdornedAtom] = None,
    workers: Optional[int] = None,
    batch_size: int = 64,
    timeout: float = 120.0,
    coalesce: bool = False,
    package_requests: bool = False,
    edb_shards: Optional[int] = None,
    tuple_sets: bool = True,
    columnar: bool = True,
    planner: str = "static",
    retry: Union[RetryPolicy, int, None] = None,
    fallback: str = "none",
    heartbeat_interval: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    graph: Optional[RuleGoalGraph] = None,
    database: Optional[Database] = None,
) -> PoolQueryResult:
    """Evaluate the query on a supervised pool of shard workers.

    ``workers`` defaults to ``os.cpu_count()``; ``edb_shards`` (how many
    hash-partition replicas each "d"-bound EDB leaf gets) defaults to
    ``workers``.  With ``tuple_sets`` on (default), producers emit packaged
    answer sets, batches carry them natively, and ingest merges adjacent
    rows, so cross-shard counters (``cross_messages``) are in logical
    tuples.

    Fault tolerance: every attempt runs under a :class:`Supervisor` —
    a crashed worker raises :class:`~repro.runtime.supervision
    .WorkerCrashError` (with the remote traceback when the worker could
    report one), a wedged worker raises ``WorkerStallError`` within
    ``2 × heartbeat_interval`` when ``heartbeat_interval`` is set, and the
    global ``timeout`` raises ``EvaluationTimeout`` (a ``TimeoutError``).
    ``retry`` (a :class:`RetryPolicy` or an attempt count) re-executes the
    whole query on such failures — sound because monotone set-semantics
    evaluation reaches the same least fixpoint on re-execution — reusing
    the prebuilt ``graph`` so retries skip graph construction.
    ``fallback="inprocess"`` answers from the single-process scheduler
    after retries are exhausted, with ``degraded=True`` and the per-attempt
    ``failure_log`` recorded on the result.  ``fault_plan`` (or the
    ``REPRO_FAULTS`` environment variable) injects deterministic faults
    for testing.
    """
    if fallback not in ("none", "inprocess"):
        raise ValueError(f"unknown fallback {fallback!r}; use 'none' or 'inprocess'")
    n_shards = workers if workers is not None else (os.cpu_count() or 1)
    n_shards = max(1, n_shards)
    replicas = edb_shards if edb_shards is not None else n_shards
    policy = RetryPolicy.of(retry)
    plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
    if planner not in ("static", "cost"):
        raise ValueError(f"unknown planner {planner!r} (expected 'static' or 'cost')")
    if graph is None:
        if planner == "cost":
            from ..core.planner import CostPlanner

            # Seed from the facts when no database was shared, as the
            # in-process engine does: same priors, same chosen plan.
            cost_planner = CostPlanner.from_database(
                database
                if database is not None
                else Database.from_facts(program.facts)
            )
            sip_factory = cost_planner.sip_factory()
        graph = build_rule_goal_graph(
            program, sip_factory, query_goal=query_goal, coalesce=coalesce
        )
        if planner == "cost":
            graph.plan_report = cost_planner.report

    def attempt(number: int) -> PoolQueryResult:
        return _pool_attempt(
            program,
            graph,
            n_shards,
            batch_size,
            timeout,
            package_requests,
            replicas,
            tuple_sets,
            columnar,
            database,
            heartbeat_interval,
            plan.for_attempt(number) if plan is not None else None,
        )

    def degraded_fallback() -> PoolQueryResult:
        engine = MessagePassingEngine(
            program,
            package_requests=package_requests,
            tuple_sets=tuple_sets,
            columnar=columnar,
            database=database,
            graph=graph,
        )
        in_process = engine.run()
        stream = engine.driver.feeders[engine.graph.root]
        return PoolQueryResult(
            answers=set(in_process.answers),
            completed=in_process.completed,
            workers=0,  # no pool answered this query
            cross_messages=0,
            cross_batches=0,
            driver_last_seq_sent=stream.last_seq_sent,
            driver_last_upto_ended=stream.last_upto_ended,
        )

    result, attempts, degraded, failure_log = run_with_retry(
        attempt,
        policy,
        degraded_fallback if fallback == "inprocess" else None,
    )
    result.attempts = attempts
    result.degraded = degraded
    result.failure_log = list(failure_log)
    return result
