"""A genuinely concurrent runtime: one asyncio task and queue per process.

The paper pitches the formulation as "amenable to parallel computation": the
network requires no shared memory, only message channels, so it can run on
"existing operating system features, such as scheduling, message queueing,
and multi-tasking".  This runtime demonstrates that claim with the *same*
node logic as the deterministic simulator, but with each node as an asyncio
task owning a private queue.  Nothing here can observe global quiescence —
the run finishes exactly when the distributed termination machinery delivers
the final ``end`` to the driver, which is the whole point of Section 3.2.

Results must (and, in the tests, do) coincide with the deterministic
scheduler's for every program.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional

from ..core.adornment import AdornedAtom
from ..core.program import Program
from ..core.rulegoal import SipFactory
from ..core.sips import greedy_sip
from ..network.engine import MessagePassingEngine
from ..network.messages import Message, logical_size
from ..network.nodes import DRIVER_ID

__all__ = ["AsyncQueryResult", "AsyncNetwork", "evaluate_async", "run_async"]


@dataclass
class AsyncQueryResult:
    """Answers plus coarse accounting from a concurrent run."""

    answers: set[tuple]
    completed: bool
    messages_sent: int
    tasks: int


class AsyncNetwork:
    """The channel fabric: an unbounded ``asyncio.Queue`` per process.

    Exposes the same two operations node logic needs from the deterministic
    scheduler — ``send`` and ``pending_for`` (a process may inspect only its
    *own* queue length, which is local knowledge in any real system).
    """

    def __init__(self) -> None:
        self.queues: dict[int, asyncio.Queue] = {}
        self.messages_sent = 0

    def add_process(self, node_id: int) -> asyncio.Queue:
        """Create the queue for one process."""
        queue: asyncio.Queue = asyncio.Queue()
        self.queues[node_id] = queue
        return queue

    def send(self, message: Message) -> None:
        """Enqueue a message on the receiver's queue (never blocks).

        ``messages_sent`` counts logical tuples — a ``TupleSet`` weighs
        ``len(rows)`` — to stay comparable with the simulator's totals.
        """
        self.queues[message.receiver].put_nowait(message)
        self.messages_sent += logical_size(message)

    def pending_for(self, node_id: int) -> int:
        """The length of one process's own inbox."""
        return self.queues[node_id].qsize()


async def run_async(
    program: Program,
    sip_factory: SipFactory = greedy_sip,
    query_goal: Optional[AdornedAtom] = None,
    timeout: float = 120.0,
    coalesce: bool = False,
    package_requests: bool = False,
    tuple_sets: bool = True,
    columnar: bool = True,
    planner: str = "static",
) -> AsyncQueryResult:
    """Evaluate the query with one concurrent task per graph node."""
    engine = MessagePassingEngine(
        program,
        sip_factory=sip_factory,
        query_goal=query_goal,
        validate_protocol=False,  # the oracle check needs the simulator
        coalesce=coalesce,
        package_requests=package_requests,
        tuple_sets=tuple_sets,
        columnar=columnar,
        planner=planner,
    )
    network = AsyncNetwork()
    for node_id in engine.processes:
        network.add_process(node_id)

    done = asyncio.Event()
    engine.driver.on_complete = done.set

    async def node_loop(node_id: int) -> None:
        process = engine.processes[node_id]
        queue = network.queues[node_id]
        while True:
            message = await queue.get()
            process.handle(message, network)  # type: ignore[arg-type]
            process.on_idle_check(network)  # type: ignore[arg-type]

    tasks = [asyncio.create_task(node_loop(node_id)) for node_id in engine.processes]
    try:
        engine.driver.start(network)  # type: ignore[arg-type]
        await asyncio.wait_for(done.wait(), timeout=timeout)
    finally:
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    return AsyncQueryResult(
        answers=set(engine.driver.answers),
        completed=engine.driver.completed,
        messages_sent=network.messages_sent,
        tasks=len(tasks),
    )


def evaluate_async(
    program: Program,
    sip_factory: SipFactory = greedy_sip,
    query_goal: Optional[AdornedAtom] = None,
    timeout: float = 120.0,
    coalesce: bool = False,
    package_requests: bool = False,
    tuple_sets: bool = True,
    columnar: bool = True,
    planner: str = "static",
) -> AsyncQueryResult:
    """Synchronous wrapper around :func:`run_async`."""
    return asyncio.run(
        run_async(
            program,
            sip_factory,
            query_goal,
            timeout,
            coalesce,
            package_requests,
            tuple_sets,
            columnar,
            planner,
        )
    )
