"""Deterministic fault injection for the multiprocess runtimes.

The chaos suite's contract with the runtimes: a :class:`FaultPlan` describes
*one* misbehavior — kill a worker after its n-th delivery, wedge it in a
busy-wait that stops its heartbeat, raise inside a node's message handler,
drop a STOP sentinel during teardown, or delay a worker's channel ingest —
and the runtimes apply it at well-defined points of their worker loops.
Because evaluation is monotone set-semantics Datalog (every node
deduplicates), any fault that is survived by retry or re-delivery must leave
the answer set byte-identical to the in-process runtime; the tests in
``tests/runtime/test_fault_tolerance.py`` assert exactly that.

Plans are deterministic on purpose: "kill worker 0 after 3 deliveries" is
reproducible, unlike probabilistic chaos, so a failing matrix entry is a
debuggable bug report.

Worker indices mean: the shard id in the pooled runtime, the spawn-order
slot in the per-node runtime.  ``only_attempt`` restricts a plan to one
attempt of a retried query (the recover-via-retry tests arm attempt 1 only);
``None`` applies it to every attempt (the graceful-degradation tests).

Plans can also come from the environment (``REPRO_FAULTS`` as a JSON object
of constructor fields), so the CLI and CI can inject faults without code:

    REPRO_FAULTS='{"kill_worker": 0, "kill_after": 3}' \
        repro-datalog run q.dl --runtime pool --retries 2
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, fields
from typing import Optional

__all__ = [
    "FaultInjectedError",
    "FaultPlan",
    "FaultInjector",
    "LinkFaultInjector",
    "ServiceFaultPlan",
    "ServiceFaultInjector",
]

#: Environment variable consulted by :meth:`FaultPlan.from_env`.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Environment variable consulted by :meth:`ServiceFaultPlan.from_env`.
SERVICE_FAULTS_ENV_VAR = "REPRO_SERVICE_FAULTS"


class FaultInjectedError(RuntimeError):
    """Raised inside a worker when a plan injects an in-node exception."""


@dataclass(frozen=True)
class FaultPlan:
    """A single deterministic fault, applied by the runtime worker loops.

    Parameters
    ----------
    kill_worker / kill_after:
        Hard-kill (``os._exit(1)`` — no cleanup, no payload) the given
        worker after it has delivered ``kill_after`` messages.
    wedge_worker / wedge_after:
        Wedge the worker in an endless sleep loop after ``wedge_after``
        deliveries.  The worker stays alive but stops bumping its
        heartbeat, which is exactly what the stall detector looks for.
    raise_in_node / raise_after:
        Raise :class:`FaultInjectedError` when a node whose label contains
        ``raise_in_node`` receives its ``raise_after + 1``-th delivery —
        exercises the worker-exception capture path (structured
        ``("error", where, traceback)`` payloads).
    drop_stop_for:
        During teardown, skip the STOP sentinel for this worker: it must be
        reaped by the terminate→kill escalation, never hang the caller.
    delay_worker / delay_seconds:
        Sleep before every channel ingest at the given worker (a slow
        channel; answers must not change).
    only_attempt:
        Arm the plan only on this (1-based) attempt of a retried query;
        ``None`` arms it on every attempt.

    Transport-level faults (cluster runtime only — applied by the manager's
    relay, where every cross-shard batch passes; links are named
    ``"<origin>-><dest>"`` in shard ids):

    drop_link / drop_link_after:
        Sever the *origin worker's connection* when the named link carries
        its ``drop_link_after + 1``-th batch — a mid-transfer network cut.
        The manager sees a worker vanish mid-job, so the supervised retry
        path must mask it exactly like a crash.
    delay_link / delay_link_seconds:
        Hold each batch on the named link for ``delay_link_seconds`` before
        forwarding — a slow WAN hop; answers must not change.
    duplicate_link / duplicate_count:
        Re-forward the row-carrying members (tuple messages / tuple sets) of
        the first ``duplicate_count`` batches on the named link — at-least-
        once delivery.  Only rows are duplicated: row delivery is idempotent
        under monotone set semantics, whereas replaying a termination-wave
        probe could falsify the Section 3.2 conclusion, so the injector
        never duplicates protocol traffic (real transports get the same
        guarantee from per-channel FIFO + the seq/upto accounting).
    partition_worker / partition_after:
        After ``partition_after`` batches touching the worker have been
        relayed, drop every further BATCH frame to *and* from that shard
        while control frames (heartbeats, pings) still flow — the classic
        partial partition.  Evaluation can no longer finish, the client's
        deadline raises ``EvaluationTimeout``, and retry (with the plan
        disarmed via ``only_attempt``) must recover.
    """

    kill_worker: Optional[int] = None
    kill_after: int = 0
    wedge_worker: Optional[int] = None
    wedge_after: int = 0
    raise_in_node: Optional[str] = None
    raise_after: int = 0
    drop_stop_for: Optional[int] = None
    delay_worker: Optional[int] = None
    delay_seconds: float = 0.0
    only_attempt: Optional[int] = None
    drop_link: Optional[str] = None
    drop_link_after: int = 0
    delay_link: Optional[str] = None
    delay_link_seconds: float = 0.0
    duplicate_link: Optional[str] = None
    duplicate_count: int = 1
    partition_worker: Optional[int] = None
    partition_after: int = 0

    def has_link_faults(self) -> bool:
        """Whether the manager relay needs a :class:`LinkFaultInjector`."""
        return (
            self.drop_link is not None
            or self.delay_link is not None
            or self.duplicate_link is not None
            or self.partition_worker is not None
        )

    def link_fields(self) -> dict:
        """The transport-fault fields as a JSON-safe dict (for JOB headers)."""
        return {
            "drop_link": self.drop_link,
            "drop_link_after": self.drop_link_after,
            "delay_link": self.delay_link,
            "delay_link_seconds": self.delay_link_seconds,
            "duplicate_link": self.duplicate_link,
            "duplicate_count": self.duplicate_count,
            "partition_worker": self.partition_worker,
            "partition_after": self.partition_after,
        }

    def for_attempt(self, attempt: int) -> Optional["FaultPlan"]:
        """The plan as armed for one attempt (``None`` when inactive)."""
        if self.only_attempt is None or self.only_attempt == attempt:
            return self
        return None

    def injector(self, worker_index: int) -> "FaultInjector":
        """Per-worker runtime state (delivery counters) for this plan."""
        return FaultInjector(self, worker_index)

    @classmethod
    def from_env(cls, environ=os.environ) -> Optional["FaultPlan"]:
        """Parse ``REPRO_FAULTS`` (a JSON object of plan fields), if set."""
        raw = environ.get(FAULTS_ENV_VAR, "").strip()
        if not raw or raw.lower() == "none":
            return None
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{FAULTS_ENV_VAR} must be a JSON object of FaultPlan fields: {exc}"
            ) from exc
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if not isinstance(data, dict) or unknown:
            raise ValueError(
                f"{FAULTS_ENV_VAR}: unknown FaultPlan fields {sorted(unknown)}"
            )
        return cls(**data)


class FaultInjector:
    """Per-worker counters that decide *when* a plan's fault fires.

    The worker loops call :meth:`on_delivery` once per delivered message
    (before handing it to the node) and :meth:`delay` once per channel
    ingest.  The injector either returns an action for the worker to take
    (``"kill"`` / ``"wedge"``), raises :class:`FaultInjectedError` (the
    in-node exception fault), or does nothing.
    """

    def __init__(self, plan: FaultPlan, worker_index: int) -> None:
        self.plan = plan
        self.worker_index = worker_index
        self.delivered = 0
        self.raise_hits = 0

    def on_delivery(self, label: Optional[str] = None) -> Optional[str]:
        """Account one delivery; return an action or raise the injected error."""
        plan = self.plan
        self.delivered += 1
        if (
            plan.raise_in_node is not None
            and label is not None
            and plan.raise_in_node in label
        ):
            self.raise_hits += 1
            if self.raise_hits > plan.raise_after:
                raise FaultInjectedError(
                    f"injected failure handling a message at node {label!r} "
                    f"(delivery {self.raise_hits})"
                )
        if plan.kill_worker == self.worker_index and self.delivered > plan.kill_after:
            return "kill"
        if plan.wedge_worker == self.worker_index and self.delivered > plan.wedge_after:
            return "wedge"
        return None

    def delay(self) -> None:
        """Sleep if this worker's channel is the one being delayed."""
        plan = self.plan
        if plan.delay_worker == self.worker_index and plan.delay_seconds > 0:
            time.sleep(plan.delay_seconds)


def _parse_link(name: str) -> tuple[int, int]:
    """``"0->1"`` as ``(origin shard, destination shard)``."""
    origin, _, dest = name.partition("->")
    try:
        return int(origin), int(dest)
    except ValueError:
        raise ValueError(
            f"link fault names are '<origin>-><dest>' in shard ids, got {name!r}"
        ) from None


class LinkFaultInjector:
    """Relay-side counters deciding when a transport fault fires.

    The cluster manager calls :meth:`on_batch` once per relayed cross-shard
    batch, before forwarding.  The return value tells the relay what to do:
    ``None`` (forward normally), ``"drop_connection"`` (sever the origin
    worker's socket), ``"duplicate"`` (forward, then forward the
    row-carrying members again), ``"blackhole"`` (silently swallow the
    batch — the partition fault), or a float (seconds to hold the batch
    before forwarding).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._link_counts: dict[tuple[int, int], int] = {}
        self._partition_seen = 0
        self._duplicated = 0
        self.drop_link = _parse_link(plan.drop_link) if plan.drop_link else None
        self.delay_link = _parse_link(plan.delay_link) if plan.delay_link else None
        self.duplicate_link = (
            _parse_link(plan.duplicate_link) if plan.duplicate_link else None
        )

    def on_batch(self, origin: int, dest: int):
        plan = self.plan
        link = (origin, dest)
        count = self._link_counts.get(link, 0) + 1
        self._link_counts[link] = count
        if plan.partition_worker is not None and plan.partition_worker in link:
            self._partition_seen += 1
            if self._partition_seen > plan.partition_after:
                return "blackhole"
        if self.drop_link == link and count > plan.drop_link_after:
            return "drop_connection"
        if (
            self.duplicate_link == link
            and self._duplicated < plan.duplicate_count
        ):
            self._duplicated += 1
            return "duplicate"
        if self.delay_link == link and plan.delay_link_seconds > 0:
            return plan.delay_link_seconds
        return None


def wedge_forever() -> None:  # pragma: no cover - runs in a sacrificed worker
    """Busy-block without ever bumping a heartbeat (the 'wedged' fault)."""
    while True:
        time.sleep(60)


# ----------------------------------------------------------------------
# Service-tier faults: misbehaving *replicas* instead of worker shards.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceFaultPlan:
    """One deterministic service-tier fault, applied by a named replica.

    Where :class:`FaultPlan` sabotages shard workers inside one
    evaluation, this plan sabotages a whole replica ``QueryServer``
    process behind the replication front door.  Replicas are addressed
    by *name* (``"replica-0"``, ``"replica-1"``, …) and the counters
    count *served requests* at that replica, so "kill replica-1 after
    its 3rd request" is exactly reproducible.

    Parameters
    ----------
    kill_replica / kill_after:
        Hard-exit (``os._exit(1)`` — no drain, no flush) the named
        replica once it has served ``kill_after`` requests.
    wedge_replica / wedge_after:
        Block the replica's event loop in an endless sleep after
        ``wedge_after`` requests: the process stays alive but stops
        answering *and* stops bumping its heartbeat — the front door's
        stall detector must catch it.
    drop_replica / drop_after / drop_count:
        Sever the connection without a response on the next
        ``drop_count`` requests (default 1) once ``drop_after`` have
        been served, then behave normally — a transient network flap
        the failover/retry path must mask.
    delay_replica / delay_seconds / delay_after:
        Sleep ``delay_seconds`` before answering every request after the
        first ``delay_after`` — a slow replica the front door's
        per-attempt timeout must route around.
    only_ops:
        Restrict the fault to these wire ops (e.g. ``["query"]``) so
        health-probe pings can still get through; ``None`` applies it
        to every op including pings.
    """

    kill_replica: Optional[str] = None
    kill_after: int = 0
    wedge_replica: Optional[str] = None
    wedge_after: int = 0
    drop_replica: Optional[str] = None
    drop_after: int = 0
    drop_count: int = 1
    delay_replica: Optional[str] = None
    delay_seconds: float = 0.0
    delay_after: int = 0
    only_ops: Optional[tuple] = None

    def injector(self, replica_name: str) -> "ServiceFaultInjector":
        """Per-replica runtime state (request counters) for this plan."""
        return ServiceFaultInjector(self, replica_name)

    @classmethod
    def from_env(cls, environ=os.environ) -> Optional["ServiceFaultPlan"]:
        """Parse ``REPRO_SERVICE_FAULTS`` (a JSON object of fields), if set."""
        raw = environ.get(SERVICE_FAULTS_ENV_VAR, "").strip()
        if not raw or raw.lower() == "none":
            return None
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{SERVICE_FAULTS_ENV_VAR} must be a JSON object of "
                f"ServiceFaultPlan fields: {exc}"
            ) from exc
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known if isinstance(data, dict) else set()
        if not isinstance(data, dict) or unknown:
            raise ValueError(
                f"{SERVICE_FAULTS_ENV_VAR}: unknown ServiceFaultPlan fields "
                f"{sorted(unknown)}"
            )
        if isinstance(data.get("only_ops"), list):
            data["only_ops"] = tuple(data["only_ops"])
        return cls(**data)


class ServiceFaultInjector:
    """Per-replica request counters deciding *when* a service fault fires.

    The replica server calls :meth:`on_request` once per dispatched
    request.  The returned action is one of ``None`` (behave), ``"kill"``
    (``os._exit`` now), ``"wedge"`` (block the event loop forever),
    ``"drop"`` (sever this connection without responding), or a float —
    seconds to sleep before answering (the slow-replica fault).
    """

    def __init__(self, plan: ServiceFaultPlan, replica_name: str) -> None:
        self.plan = plan
        self.replica_name = replica_name
        self.served = 0
        self.dropped = 0

    def on_request(self, op: str):
        plan = self.plan
        if plan.only_ops is not None and op not in plan.only_ops:
            return None
        self.served += 1
        name = self.replica_name
        if plan.kill_replica == name and self.served > plan.kill_after:
            return "kill"
        if plan.wedge_replica == name and self.served > plan.wedge_after:
            return "wedge"
        if (
            plan.drop_replica == name
            and self.served > plan.drop_after
            and self.dropped < plan.drop_count
        ):
            self.dropped += 1
            return "drop"
        if (
            plan.delay_replica == name
            and plan.delay_seconds > 0
            and self.served > plan.delay_after
        ):
            return plan.delay_seconds
        return None
