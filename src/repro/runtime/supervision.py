"""Supervision for the multiprocess runtimes: crash detection, retry, fallback.

The paper's Section 3.1 computation model assumes perfectly reliable
processes and channels; the Section 3.2 ``empty_queues()`` termination
argument silently breaks the moment a worker dies holding undelivered
messages — before this layer, a crashed worker simply hung the caller for
the full global deadline.  This module supplies the missing failure model:

* a :class:`Supervisor` that waits for the result while polling worker
  liveness (``Process.is_alive()`` / ``exitcode``) and per-worker heartbeat
  counters (single-writer shared slots, bumped by each worker loop), so a
  crashed worker surfaces in ~a poll interval and a wedged one within
  ``2 × heartbeat_interval`` — as a *typed* error, never a bare hang;
* structured ``("error", where, traceback)`` result payloads, shipped by
  the worker loops when node code raises, re-raised driver-side as
  :class:`WorkerCrashError` with the remote traceback attached;
* a deterministic :class:`RetryPolicy` and :func:`run_with_retry` driver.
  Whole-query re-execution is *semantically safe* here because evaluation
  is monotone set-semantics Datalog: every node deduplicates, so
  at-least-once effects (a retry re-deriving tuples the dead attempt
  already produced) collapse to the same least fixpoint — the property
  distributed recursive-query systems classically exploit for fault
  tolerance;
* graceful degradation: after retries are exhausted, an optional fallback
  to the in-process :class:`~repro.network.scheduler.Scheduler` runtime,
  recorded as ``degraded`` on the result so callers can see what happened;
* :func:`shutdown_workers`, the audited teardown: non-blocking STOP
  delivery (a full or abandoned inbox must never block the caller),
  bounded joins, and a terminate → kill escalation so a timed-out query
  cannot leak zombie processes.

Heartbeats deliberately live *outside* the Section 3.2 message accounting:
they are plain liveness counters read only by the parent, never consulted
by ``empty_queues()``/``pending_for`` — see ``docs/protocol.md`` for why
this cannot perturb the termination argument.
"""

from __future__ import annotations

import queue as queue_module
import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

__all__ = [
    "RuntimeFailure",
    "WorkerCrashError",
    "WorkerStallError",
    "EvaluationTimeout",
    "RetryPolicy",
    "Supervisor",
    "shutdown_workers",
    "run_with_retry",
]


class RuntimeFailure(RuntimeError):
    """Base of all typed multiprocess-runtime failures (retryable)."""


class WorkerCrashError(RuntimeFailure):
    """A worker process died, or node code inside it raised.

    ``remote_traceback`` carries the worker-side traceback when the failure
    was an exception the worker could still report; a hard kill (signal,
    ``os._exit``) leaves only the exit code.
    """

    def __init__(
        self,
        where: str,
        exitcode: Optional[int] = None,
        remote_traceback: Optional[str] = None,
    ) -> None:
        self.where = where
        self.exitcode = exitcode
        self.remote_traceback = remote_traceback
        message = f"worker {where} crashed"
        if exitcode is not None:
            message += f" (exit code {exitcode})"
        if remote_traceback:
            message += "\n--- remote traceback ---\n" + remote_traceback.rstrip()
        super().__init__(message)


class WorkerStallError(RuntimeFailure):
    """A worker is alive but its heartbeat stopped (wedged/livelocked)."""

    def __init__(self, where: str, stalled_for: float, heartbeat_interval: float) -> None:
        self.where = where
        self.stalled_for = stalled_for
        self.heartbeat_interval = heartbeat_interval
        super().__init__(
            f"worker {where} heartbeat stalled for {stalled_for:.2f}s "
            f"(heartbeat interval {heartbeat_interval}s)"
        )


class EvaluationTimeout(RuntimeFailure, TimeoutError):
    """The global deadline passed with every worker apparently healthy.

    Subclasses :class:`TimeoutError` so pre-supervision callers that caught
    the bare timeout keep working.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Whole-query retry: attempts, (exponential) backoff, wall-clock cap.

    ``max_attempts`` counts executions (1 = no retry).  The sleep before
    retry attempt *k* (the ``k``-th execution, ``k >= 2``) is::

        backoff * backoff_factor ** (k - 2)  +  uniform(0, jitter)

    The defaults (``backoff_factor=1.0``, ``jitter=0.0``) reproduce the
    original fixed-sleep behavior exactly — deterministic chaos tests
    stay deterministic unless a policy opts in.  ``backoff_factor > 1``
    grows the sleep geometrically (the classic exponential backoff);
    ``jitter > 0`` adds a uniform random slice so a herd of clients
    retrying the same failure decorrelates instead of stampeding in
    lockstep.  ``deadline``, when set, caps the total wall clock across
    attempts — no attempt *starts* after it passes.
    """

    max_attempts: int = 1
    backoff: float = 0.0
    backoff_factor: float = 1.0
    jitter: float = 0.0
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.backoff_factor <= 0:
            raise ValueError(
                f"backoff_factor must be > 0, got {self.backoff_factor}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def delay_for(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """Seconds to sleep *before* executing ``attempt`` (1-based).

        Attempt 1 never waits.  Pass an ``rng`` to make the jitter slice
        reproducible (tests); the module-level generator is used
        otherwise.
        """
        if attempt <= 1 or (self.backoff <= 0 and self.jitter <= 0):
            return 0.0
        delay = self.backoff * self.backoff_factor ** (attempt - 2)
        if self.jitter > 0:
            delay += (rng.uniform if rng else random.uniform)(0.0, self.jitter)
        return delay

    @classmethod
    def of(cls, value: "RetryPolicy | int | None") -> "RetryPolicy":
        """Normalize ``None`` / an attempt count / a policy into a policy."""
        if value is None:
            return cls()
        if isinstance(value, RetryPolicy):
            return value
        return cls(max_attempts=int(value))


class Supervisor:
    """Waits on the result queue while watching the workers' vital signs.

    Parameters
    ----------
    workers:
        The attempt's worker :class:`multiprocessing.Process` objects.
    result_queue:
        Where a worker posts the terminal payload: ``("done", answers,
        accounting)`` on success or ``("error", where, traceback)`` when
        node code raised.
    heartbeats:
        A shared array with one single-writer slot per worker, bumped by
        each worker-loop iteration (including idle polls, so a blocked-on-
        input worker still beats).  ``None`` disables stall detection.
    heartbeat_interval:
        Expected worst-case gap between a healthy worker's beats.  A slot
        unchanged for ``2 × heartbeat_interval`` raises
        :class:`WorkerStallError`.  ``None`` disables stall detection
        (crash detection stays on).
    labels:
        Human-readable per-worker names for error messages (defaults to
        ``"worker <i>"``).
    what:
        Noun for the timeout message (e.g. ``"pooled evaluation"``).
    """

    def __init__(
        self,
        workers: Sequence,
        result_queue,
        heartbeats=None,
        heartbeat_interval: Optional[float] = None,
        labels: Optional[Sequence[str]] = None,
        what: str = "evaluation",
    ) -> None:
        self.workers = list(workers)
        self.result_queue = result_queue
        self.heartbeats = heartbeats
        self.heartbeat_interval = heartbeat_interval
        self.labels = (
            list(labels)
            if labels is not None
            else [f"worker {i}" for i in range(len(self.workers))]
        )
        self.what = what

    # ------------------------------------------------------------------
    def wait(self, timeout: float):
        """Block until a terminal payload, a crash, a stall, or the deadline.

        Returns the validated ``("done", ...)`` payload; raises the typed
        error otherwise.  Detection latency is one poll interval for a
        crash and at most ``2 × heartbeat_interval`` + one poll for a
        stall — never the full ``timeout``.
        """
        deadline = time.monotonic() + timeout
        poll = 0.05
        stall_after: Optional[float] = None
        if self.heartbeat_interval is not None and self.heartbeats is not None:
            stall_after = 2.0 * self.heartbeat_interval
            poll = min(poll, max(0.01, self.heartbeat_interval / 4.0))
        beats = list(self.heartbeats) if self.heartbeats is not None else []
        last_change = [time.monotonic()] * len(beats)

        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise EvaluationTimeout(
                    f"{self.what} did not complete within {timeout}s"
                )
            try:
                payload = self.result_queue.get(timeout=min(poll, remaining))
            except queue_module.Empty:
                pass
            else:
                return self._accept(payload)

            for index, worker in enumerate(self.workers):
                if not worker.is_alive():
                    # Prefer a structured error payload the dying worker may
                    # have flushed just before exiting over a bare exit code.
                    late = self._drain_one()
                    if late is not None:
                        return self._accept(late)
                    raise WorkerCrashError(
                        self.labels[index], exitcode=worker.exitcode
                    )

            if stall_after is not None:
                now = time.monotonic()
                for index in range(len(beats)):
                    current = self.heartbeats[index]
                    if current != beats[index]:
                        beats[index] = current
                        last_change[index] = now
                    elif now - last_change[index] > stall_after:
                        raise WorkerStallError(
                            self.labels[index],
                            now - last_change[index],
                            self.heartbeat_interval,  # type: ignore[arg-type]
                        )

    # ------------------------------------------------------------------
    def _accept(self, payload):
        """Validate a result payload; typed errors instead of bare asserts.

        The pre-supervision code asserted ``kind == "done"`` — stripped
        under ``python -O`` and silent about *why* a worker failed.
        """
        kind = payload[0]
        if kind == "error":
            _, where, remote_traceback = payload
            raise WorkerCrashError(str(where), remote_traceback=remote_traceback)
        if kind != "done":
            raise RuntimeFailure(f"unexpected result payload kind {kind!r}")
        return payload

    def _drain_one(self, grace: float = 0.25):
        """One last look at the result queue after noticing a dead worker."""
        try:
            return self.result_queue.get(timeout=grace)
        except queue_module.Empty:
            return None


# ----------------------------------------------------------------------
def shutdown_workers(
    workers: Sequence,
    send_stop: Callable[[], None],
    join_timeout: float = 2.0,
) -> None:
    """Tear an attempt's workers down without blocking and without zombies.

    Ordering audit (the pre-supervision cleanup could block or leak):

    1. STOP sentinels are sent through ``send_stop``, which must use
       non-blocking puts and swallow per-queue errors — an abandoned or
       broken inbox (dead worker, dead manager) must not block teardown;
    2. every worker gets a bounded ``join``;
    3. survivors are ``terminate()``d (SIGTERM) and re-joined;
    4. anything that survives *terminate* is ``kill()``ed (SIGKILL) — a
       worker wedged in uninterruptible state cannot be left as a zombie.
    """
    try:
        send_stop()
    except Exception:  # pragma: no cover - defensive: stop is best-effort
        pass
    for worker in workers:
        worker.join(timeout=join_timeout)
    stubborn = [worker for worker in workers if worker.is_alive()]
    for worker in stubborn:
        worker.terminate()
    for worker in stubborn:
        worker.join(timeout=join_timeout)
        if worker.is_alive():
            # SIGTERM ignored/blocked: escalate. kill() exists on 3.7+.
            worker.kill()
            worker.join(timeout=join_timeout)


# ----------------------------------------------------------------------
def run_with_retry(
    attempt_fn: Callable[[int], object],
    policy: RetryPolicy,
    fallback_fn: Optional[Callable[[], object]] = None,
):
    """Execute ``attempt_fn(attempt)`` under a deterministic retry policy.

    Returns ``(result, attempts, degraded, failure_log)``.  Only typed
    runtime failures (and timeouts) are retried; programming errors
    propagate immediately.  When every attempt fails and ``fallback_fn``
    is given, it runs once and the result is flagged degraded; otherwise
    the last failure is re-raised with the accumulated ``failure_log``
    attached to it.
    """
    failure_log: list[str] = []
    deadline = (
        time.monotonic() + policy.deadline if policy.deadline is not None else None
    )
    max_attempts = max(1, policy.max_attempts)
    last_error: Optional[BaseException] = None
    attempts = 0
    for attempt in range(1, max_attempts + 1):
        if attempt > 1 and deadline is not None and time.monotonic() >= deadline:
            failure_log.append(
                f"retry deadline ({policy.deadline}s) exhausted before attempt {attempt}"
            )
            break
        attempts = attempt
        try:
            return attempt_fn(attempt), attempts, False, failure_log
        except (RuntimeFailure, TimeoutError) as exc:
            last_error = exc
            summary = str(exc).splitlines()[0]
            failure_log.append(f"attempt {attempt}: {type(exc).__name__}: {summary}")
        if attempt < max_attempts:
            delay = policy.delay_for(attempt + 1)
            if delay > 0:
                time.sleep(delay)
    if fallback_fn is not None:
        failure_log.append(
            "degraded: falling back to the in-process scheduler runtime"
        )
        return fallback_fn(), attempts, True, failure_log
    assert last_error is not None
    last_error.failure_log = failure_log  # type: ignore[attr-defined]
    raise last_error
