"""Session-level caching: a bounded LRU cache for rule/goal graphs.

The paper's Section 1 split between the *permanent* IDB/EDB and the
transient per-query rules is a serving architecture: the PIDB and EDB
persist while queries come and go.  Theorem 2.1 makes the expensive
structural artifact — the information-passing rule/goal graph — depend
only on the IDB and the (adorned) query, never on the EDB, so a
:class:`~repro.session.Session` may reuse one graph across arbitrarily
many queries and across ``add_facts`` calls.  This module holds the
cache machinery; the keys are built by
:func:`repro.core.rulegoal.graph_cache_key`.

The cache is a plain LRU over hashable keys.  ``capacity=0`` disables
caching entirely (every lookup misses, nothing is stored) — useful for
benchmarking the uncached behavior through the same code path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterator, Optional, TypeVar

__all__ = ["CacheStats", "GraphCache"]

V = TypeVar("V")


@dataclass(frozen=True)
class CacheStats:
    """An immutable snapshot of one cache's counters.

    ``hits``/``misses`` count :meth:`GraphCache.get` outcomes over the
    cache's lifetime; ``evictions`` counts entries dropped by the LRU
    bound (explicit :meth:`GraphCache.clear` calls count separately as
    ``invalidations``).
    """

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} evictions={self.evictions} "
            f"size={self.size}/{self.capacity}"
        )


class GraphCache:
    """A bounded LRU mapping cache keys to rule/goal graphs.

    The values are treated as immutable shared structure: a hit returns
    the very same object that was stored, so callers must not mutate
    cached graphs.

    Thread-safe: every operation (including the ``move_to_end`` recency
    bump inside :meth:`get`) runs under one internal lock, so concurrent
    queries against a shared session cannot corrupt the LRU ordering or
    the hit/miss/eviction counters.  The lock is re-entrant, so a holder
    may call back into the cache (e.g. ``stats()`` inside a traced
    ``put``) without deadlocking.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[object]:
        """The cached value for ``key`` (refreshing its recency), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value: object) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry if full."""
        with self._lock:
            if self.capacity == 0:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> int:
        """Drop every entry (rule-set invalidation); returns the count dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Iterator[Hashable]:
        """A snapshot of cached keys, least- to most-recently used."""
        with self._lock:
            return iter(list(self._entries.keys()))

    def stats(self) -> CacheStats:
        """A point-in-time :class:`CacheStats` snapshot."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                invalidations=self.invalidations,
                size=len(self._entries),
                capacity=self.capacity,
            )
