"""A writer-preferring readers/writer lock for the serving layer.

The serving concurrency discipline (docs/architecture.md, "Serving")
needs exactly one primitive the stdlib does not provide: many queries
may evaluate against the shared ``Database``/``GraphCache`` at once
(Theorem 2.1 — evaluation never mutates the EDB or the IDB), while
``add_facts``/``add_rules`` need the structures to themselves for their
validate-then-commit flush.  That is a classic readers/writer lock.

Writer preference: once a writer is waiting, new readers queue behind
it.  Queries are frequent and short; without preference a steady read
load would starve mutations forever.  The lock is **not** re-entrant —
a reader acquiring the write lock (or vice versa) deadlocks, which is
fine here because :class:`~repro.service.shared_session.SharedSession`
is the only caller and keeps its critical sections flat.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Many concurrent readers or one writer, writers preferred.

    Use the :meth:`read_locked` / :meth:`write_locked` context managers;
    the raw acquire/release pairs exist for callers that cannot scope
    the hold to one frame.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        # Lifetime accounting (test/observability hooks, no lock needed
        # beyond _cond which every mutation already holds).
        self.reads_acquired = 0
        self.writes_acquired = 0
        self.max_concurrent_readers = 0

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then join the readers."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self.reads_acquired += 1
            if self._readers > self.max_concurrent_readers:
                self.max_concurrent_readers = self._readers

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Block until the structure is quiescent, then take exclusive hold."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self.writes_acquired += 1

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self):
        """``with rw.read_locked(): ...`` — shared (query) critical section."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with rw.write_locked(): ...`` — exclusive (mutation) section."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
