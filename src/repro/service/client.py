"""A small blocking client for the query service.

Speaks the NDJSON protocol of :mod:`repro.service.protocol` over one
TCP connection.  Typed server failures surface as
:class:`ServiceClientError` carrying the wire ``error_type``, so
callers can branch on ``overloaded`` vs ``deadline_exceeded`` vs their
own ``bad_request`` without string matching.

>>> from repro.service import ServiceClient          # doctest: +SKIP
>>> with ServiceClient(port=7464) as client:         # doctest: +SKIP
...     client.query("anc(ann, Z)").answers
{('bob',), ('cal',)}

One request is in flight per connection at a time (an internal lock
serializes callers), matching the server's per-connection sequential
dispatch; use one client per thread for concurrent load.

Transport failures — a refused or severed connection, a read timeout —
are retried automatically with exponential backoff plus jitter, but
**only for idempotent operations** (:data:`IDEMPOTENT_OPS`:
query/ask/stats/ping).  A write whose connection died after the
request was sent may or may not have committed; replaying it blindly
is safe against *this* repo's monotone set semantics but not against
the protocol in general, so writes surface the transport error to the
caller unless ``retry_writes=True`` opts in.  Each retry reconnects
from scratch (the old socket is closed on first failure), which is
what lets a client ride through a server restart or a replication
front-door failover without its callers noticing.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from ..runtime.supervision import RetryPolicy
from .protocol import encode, wire_to_rows

__all__ = ["ServiceClient", "ServiceClientError", "QueryReply", "IDEMPOTENT_OPS"]

#: Operations safe to replay after an ambiguous transport failure.
IDEMPOTENT_OPS = ("query", "ask", "stats", "ping")


class ServiceClientError(Exception):
    """A typed failure response (or transport problem) from the service."""

    def __init__(self, error_type: str, message: str, payload: Optional[dict] = None):
        self.error_type = error_type
        self.payload = payload or {}
        super().__init__(f"{error_type}: {message}")


@dataclass(frozen=True)
class QueryReply:
    """A successful ``query``/``ask`` response, answers restored to tuples."""

    answers: frozenset
    coalesced: bool
    shared: int
    cache_hit: bool
    elapsed: float
    attempts: int = 1
    degraded: bool = False
    answer_cached: bool = False  # served from the answer cache, no evaluation
    raw: dict = field(default_factory=dict, compare=False, repr=False)


class ServiceClient:
    """A blocking NDJSON client; connects lazily on first call."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7464,
        timeout: float = 30.0,
        connect_timeout: float = 5.0,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_factor: float = 2.0,
        jitter: float = 0.05,
        retry_writes: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        #: ``retries`` extra attempts after the first, for idempotent ops
        #: (every attempt reconnects); delays follow the shared
        #: :class:`~repro.runtime.supervision.RetryPolicy` schedule.
        self.retry_policy = RetryPolicy(
            max_attempts=max(1, int(retries) + 1),
            backoff=backoff,
            backoff_factor=backoff_factor,
            jitter=jitter,
        )
        self.retry_writes = retry_writes
        self.transport_retries = 0  # attempts beyond the first, cumulative
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._lock = threading.Lock()
        self._next_id = 0

    # ------------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
            sock.settimeout(self.timeout)
            self._sock = sock
            self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        file, sock = self._file, self._sock
        self._file = self._sock = None
        if file is not None:
            try:
                file.close()
            except OSError:
                pass
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def call(self, op: str, **fields) -> dict:
        """One request/response round trip with idempotent-retry on transport.

        A transport failure (connect refused, connection severed, read
        timeout) closes the socket and — for ops in
        :data:`IDEMPOTENT_OPS`, or any op when ``retry_writes`` is set —
        retries on a fresh connection up to the policy's attempt bound,
        backing off exponentially with jitter between attempts.  Typed
        server errors are never retried; they are answers.
        """
        policy = self.retry_policy
        attempts = (
            policy.max_attempts
            if (op in IDEMPOTENT_OPS or self.retry_writes)
            else 1
        )
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                self.transport_retries += 1
                delay = policy.delay_for(attempt)
                if delay > 0:
                    time.sleep(delay)
            try:
                return self._call_once(op, **fields)
            except ServiceClientError as exc:
                if exc.error_type != "transport" or attempt >= attempts:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _call_once(self, op: str, **fields) -> dict:
        """One raw round trip on the current (or a fresh) connection."""
        with self._lock:
            try:
                self.connect()
            except OSError as exc:
                self.close()
                raise ServiceClientError("transport", f"connect failed: {exc}") from exc
            self._next_id += 1
            request = {"id": self._next_id, "op": op, **fields}
            try:
                self._file.write(encode(request))
                self._file.flush()
                line = self._file.readline()
            except (OSError, ValueError) as exc:
                self.close()
                raise ServiceClientError("transport", f"connection failed: {exc}") from exc
        if not line:
            self.close()
            raise ServiceClientError("transport", "server closed the connection")
        try:
            response = json.loads(line)
        except ValueError as exc:
            self.close()
            raise ServiceClientError("transport", f"unparseable response: {exc}") from exc
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise ServiceClientError(
                error.get("type", "internal"),
                error.get("message", "unknown failure"),
                response,
            )
        return response

    # ------------------------------------------------------------------
    def query(self, query: str, timeout: Optional[float] = None) -> QueryReply:
        """Evaluate; the reply carries answers plus serving accounting."""
        fields = {"query": query}
        if timeout is not None:
            fields["timeout"] = timeout
        response = self.call("query", **fields)
        return QueryReply(
            answers=frozenset(wire_to_rows(response.get("answers"))),
            coalesced=bool(response.get("coalesced")),
            shared=int(response.get("shared", 1)),
            cache_hit=bool(response.get("cache_hit")),
            elapsed=float(response.get("elapsed", 0.0)),
            attempts=int(response.get("attempts", 1)),
            degraded=bool(response.get("degraded", False)),
            answer_cached=bool(response.get("answer_cached", False)),
            raw=response,
        )

    def ask(self, query: str, timeout: Optional[float] = None) -> bool:
        """Boolean query against the service."""
        fields = {"query": query}
        if timeout is not None:
            fields["timeout"] = timeout
        return bool(self.call("ask", **fields).get("result"))

    def add_facts(self, facts: str, timeout: Optional[float] = None) -> dict:
        fields = {"facts": facts}
        if timeout is not None:
            fields["timeout"] = timeout
        return self.call("add_facts", **fields)

    def add_rules(self, rules: str, timeout: Optional[float] = None) -> dict:
        fields = {"rules": rules}
        if timeout is not None:
            fields["timeout"] = timeout
        return self.call("add_rules", **fields)

    def stats(self) -> dict:
        """The server's metrics/session/server snapshot."""
        return self.call("stats")["stats"]

    def ping(self) -> bool:
        return bool(self.call("ping").get("ok"))

    def shutdown(self) -> dict:
        """Ask the server to drain and stop; closes this connection."""
        try:
            return self.call("shutdown")
        finally:
            self.close()
