"""The concurrent query service: serve one knowledge base to many clients.

The paper's network of processes evaluates one query; this package
turns the PR 1 :class:`~repro.session.Session` into a long-lived,
concurrency-safe service answering a *stream* of queries against one
shared EDB/IDB — the serving architecture the Section 1 PIDB/EDB split
implies.  Layers:

* :mod:`~repro.service.locks` — the readers/writer lock (queries share,
  mutations exclude);
* :mod:`~repro.service.shared_session` — :class:`SharedSession`:
  lock discipline plus in-flight coalescing and answer caching on the
  Theorem 2.1 cache key versioned by ``Session.db_version``;
* :mod:`~repro.service.answer_cache` — completed answer sets served
  without evaluation, invalidated by version mismatch;
* :mod:`~repro.service.persistence` — snapshot + append-only NDJSON
  fact/rule log so ``repro serve --data-dir`` restarts warm;
* :mod:`~repro.service.metrics` — counters and fixed-bucket latency
  histograms behind the ``stats`` op;
* :mod:`~repro.service.protocol` — the NDJSON wire format and its typed
  error taxonomy;
* :mod:`~repro.service.server` — the asyncio TCP server with admission
  control and graceful drain (``repro serve`` on the command line);
* :mod:`~repro.service.client` — a small blocking client library with
  reconnect and bounded idempotent retry;
* :mod:`~repro.service.replication` — :class:`ReplicaSet`: N replica
  servers behind one failover front door, health-checked with a
  circuit breaker and log-replay resync (``repro serve --replicas N``).
"""

from .answer_cache import AnswerCache, AnswerCacheStats, CachedAnswer
from .client import QueryReply, ServiceClient, ServiceClientError
from .locks import ReadWriteLock
from .metrics import DEFAULT_LATENCY_BUCKETS, Counter, Histogram, MetricsRegistry
from .persistence import (
    DurableStore,
    LogCorruptionError,
    LogLockedError,
    ReplayReport,
)
from .protocol import ERROR_TYPES, OPS, ServiceError
from .replication import (
    ReplicaConfig,
    ReplicaSet,
    ReplicaSetConfig,
    ReplicaSetThread,
)
from .server import QueryServer, ServerConfig, ServerThread
from .shared_session import QueryOutcome, SharedSession

__all__ = [
    "SharedSession", "QueryOutcome", "ReadWriteLock",
    "AnswerCache", "AnswerCacheStats", "CachedAnswer",
    "DurableStore", "ReplayReport", "LogCorruptionError", "LogLockedError",
    "MetricsRegistry", "Counter", "Histogram", "DEFAULT_LATENCY_BUCKETS",
    "QueryServer", "ServerConfig", "ServerThread",
    "ReplicaSet", "ReplicaSetConfig", "ReplicaConfig", "ReplicaSetThread",
    "ServiceClient", "ServiceClientError", "QueryReply",
    "ServiceError", "ERROR_TYPES", "OPS",
]
