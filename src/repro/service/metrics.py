"""Serving metrics: thread-safe counters and fixed-bucket latency histograms.

A tiny prometheus-shaped registry — enough for the ``stats`` op to
answer "what has this server been doing" without any dependency.  Two
instrument kinds:

* :class:`Counter` — a monotonically increasing integer (requests,
  rejections, cache hits, messages, retries …);
* :class:`Histogram` — observations bucketed against a *fixed* ladder
  of upper bounds (cumulative, prometheus ``le`` style), carrying count
  and sum so both averages and percentile estimates fall out.  Fixed
  buckets keep ``observe()`` O(#buckets) with zero allocation, and make
  snapshots from different servers mergeable by simple addition.

Percentiles are *estimates*: :meth:`Histogram.quantile` interpolates
linearly inside the bucket that crosses the requested rank, which is
exact at bucket edges and at worst one bucket wide in error — the usual
trade for never storing raw samples.

Every instrument takes its own lock (uncontended in the common case);
:meth:`MetricsRegistry.snapshot` is therefore a consistent-per-
instrument (not globally atomic) JSON-safe view.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Upper bounds (seconds) spanning sub-millisecond protocol work up to
#: the multiprocess runtimes' default 120s deadline; +Inf is implicit.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


class Counter:
    """A named, thread-safe, monotonically increasing counter."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Histogram:
    """Fixed-bucket cumulative histogram with count/sum and quantiles."""

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> None:
        if not buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} has duplicate bucket bounds")
        self.name = name
        self.help = help
        self.bounds = bounds  # finite upper bounds; +Inf is implicit
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation (e.g. a latency in seconds)."""
        with self._lock:
            self._count += 1
            self._sum += value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1) from the bucket counts.

        Linear interpolation within the crossing bucket; observations in
        the +Inf overflow bucket clamp to the largest finite bound (the
        estimate is then a lower bound).  Returns 0.0 with no data.
        """
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        """Quantile from the current counts; the caller holds ``_lock``.

        The interpolated estimate is clamped to the crossing bucket's
        ``[lower, upper]`` edges: the rank arithmetic is float, and
        without the clamp an epsilon of rounding could report a value
        just outside the only bucket that holds any samples.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            in_bucket = self._counts[i]
            if in_bucket and cumulative + in_bucket >= rank:
                fraction = (rank - cumulative) / in_bucket
                estimate = lower + fraction * (bound - lower)
                return min(max(estimate, lower), bound)
            cumulative += in_bucket
            lower = bound
        return self.bounds[-1]

    def snapshot(self) -> dict:
        """JSON-safe view: count, sum, cumulative buckets, p50/p90/p99.

        One atomic view: buckets, count, sum, and every quantile are
        computed under a single lock hold, so a snapshot can never pair
        one instant's buckets with a later instant's percentiles (the
        mismatch used to let a concurrent ``observe`` push p99 outside
        the bucket range the same snapshot reported).
        """
        with self._lock:
            cumulative = 0
            buckets: Dict[str, int] = {}
            for i, bound in enumerate(self.bounds):
                cumulative += self._counts[i]
                buckets[repr(bound)] = cumulative
            buckets["+Inf"] = cumulative + self._counts[-1]
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": buckets,
                "p50": self._quantile_locked(0.50),
                "p90": self._quantile_locked(0.90),
                "p99": self._quantile_locked(0.99),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self._count})"


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as one dict.

    ``counter``/``histogram`` are get-or-create and idempotent, so any
    layer (shared session, server, client-visible ops) can grab the same
    instrument by name without plumbing objects around.  Re-requesting a
    name as the *other* kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            existing = self._counters.get(name)
            if existing is None:
                if name in self._histograms:
                    raise ValueError(f"{name!r} is already a histogram")
                existing = self._counters[name] = Counter(name, help)
            return existing

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        with self._lock:
            existing = self._histograms.get(name)
            if existing is None:
                if name in self._counters:
                    raise ValueError(f"{name!r} is already a counter")
                existing = self._histograms[name] = Histogram(name, buckets, help)
            return existing

    def get(self, name: str) -> Optional[object]:
        """The instrument registered under ``name``, if any."""
        with self._lock:
            return self._counters.get(name) or self._histograms.get(name)

    def snapshot(self) -> dict:
        """A JSON-safe snapshot of every instrument (the ``stats`` payload)."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(histograms.items())
            },
        }
