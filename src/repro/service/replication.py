"""Replicated serving: N replica servers behind one failover front door.

One :class:`~repro.service.server.QueryServer` scales reads to its
``max_concurrent`` executor threads and no further; a second server
over the same ``--data-dir`` is forbidden outright (the
:class:`~repro.service.persistence.DurableStore` single-writer lock).
:class:`ReplicaSet` is the read-scaling shape the roadmap calls for:

* **N replica processes**, each a full serving stack — its own
  :class:`~repro.service.shared_session.SharedSession` (answer cache,
  coalescing, optional warm materializations) behind its own
  :class:`QueryServer` — restored from the *shared* durable log in
  ``read_only`` mode.  Replicas never touch the files; the front door
  is the log's single writer.

* **A front door** speaking the exact NDJSON protocol of
  :mod:`~repro.service.protocol`, so every existing client works
  unchanged.  Reads (``query``/``ask``) route to the healthy replica
  with the fewest in-flight requests and *fail over*: a transport
  error or per-attempt timeout at one replica retries the request on a
  different one, invisibly to the client.  Writes commit on the front
  door's own session (validate-then-commit — a rejected mutation never
  reaches the log), append to the durable log, then fan out to every
  healthy replica before the client is acknowledged (log order = apply
  order at every replica).

* **Health with a circuit breaker** per replica:
  ``starting → resyncing → healthy`` at boot; ``failure_threshold``
  consecutive read failures (or any write-forward failure) trip the
  breaker to ``open``; after ``probe_interval`` a half-open ping probe
  decides between readmission and re-opening.  A dead process (the
  SIGKILL chaos case) or a stalled heartbeat (the wedged case) is
  restarted outright.  Readmission always passes through **log-replay
  resync**: the records the replica missed — tracked per replica as
  ``applied_seq`` against the log's monotone ``seq`` — are replayed
  from an in-memory tail (or, when the tail cannot bridge the gap, by
  a full restart that re-restores snapshot + log from disk).  Resync
  is sound for the same reason every retry in this repo is sound:
  evaluation is monotone set-semantics Datalog and every node
  deduplicates, so at-least-once delivery of a mutation collapses to
  the same least fixpoint.

* **Graceful degradation** when *no* replica is healthy: reads are
  served from the front door's own bounded cache of recent answers,
  marked ``"stale": true``; a read with no cached answer gets the
  typed ``degraded`` error instead of hanging.

Chaos coverage drives all of this deterministically: a
:class:`~repro.runtime.faults.ServiceFaultPlan` (``REPRO_SERVICE_FAULTS``)
makes a *named* replica kill itself, wedge its event loop, drop
connections, or answer slowly after an exact number of served
requests, and ``tests/service/test_replication.py`` asserts the client
never sees any of it.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp
import os
import shutil
import signal as signal_module
import tempfile
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from multiprocessing.sharedctypes import RawArray
from typing import Optional

from ..core.program import ProgramError
from ..runtime.faults import ServiceFaultInjector, ServiceFaultPlan, wedge_forever
from .metrics import MetricsRegistry
from .persistence import DurableStore
from .protocol import (
    MAX_REQUEST_BYTES,
    ServiceError,
    decode_request,
    encode,
    error_payload,
)
from .server import QueryServer, ServerConfig
from .shared_session import SharedSession

__all__ = [
    "ReplicaConfig",
    "ReplicaSetConfig",
    "ReplicaSet",
    "ReplicaSetThread",
]

# Circuit-breaker / lifecycle states, as they appear in stats payloads.
STARTING = "starting"  # process spawned, waiting for its bound port
RESYNCING = "resyncing"  # replaying missed log records before admission
HEALTHY = "healthy"  # in the read rotation and the write fan-out
OPEN = "open"  # breaker tripped; no traffic until a probe passes
HALF_OPEN = "half_open"  # one ping probe in flight
STOPPED = "stopped"  # the set is shutting down


@dataclass(frozen=True)
class ReplicaConfig:
    """Per-replica serving tunables (one replica = one QueryServer)."""

    max_concurrent: int = 4  # evaluation slots per replica
    max_queue: int = 16
    default_deadline: float = 30.0
    answer_cache_size: int = 256
    materialize: bool = False
    materialize_pool: int = 32


@dataclass(frozen=True)
class ReplicaSetConfig:
    """Tunables for the front door and its health machinery."""

    replicas: int = 3
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands on set.port
    read_timeout: float = 5.0  # per-attempt ceiling at one replica
    write_timeout: float = 15.0  # per-replica ceiling for a fanned write
    probe_timeout: float = 2.0  # half-open ping budget
    failure_threshold: int = 3  # consecutive read failures that trip the breaker
    probe_interval: float = 0.5  # open → half-open cadence
    heartbeat_interval: float = 0.25  # replica-side beat cadence
    stall_timeout: float = 1.5  # beat frozen this long = wedged, restart
    health_interval: float = 0.1  # health-loop tick
    resync_tail: int = 1024  # in-memory log records kept for resync
    boot_timeout: float = 30.0  # spawn → bound-port budget per replica
    front_cache_size: int = 256  # stale-answer entries for degraded reads
    # Readmission warm-up: before a resynced replica flips HEALTHY, the
    # front door replays up to this many of its most recent distinct
    # reads against it, so the replica's graph/answer caches (and any
    # warm materializations) are hot before real traffic lands on it.
    # 0 disables — a restarted replica then serves its first reads cold.
    warmup_queries: int = 8
    max_request_bytes: int = MAX_REQUEST_BYTES
    drain_timeout: float = 5.0


# ----------------------------------------------------------------------
# The replica process
# ----------------------------------------------------------------------
class _ReplicaQueryServer(QueryServer):
    """A QueryServer that obeys a :class:`ServiceFaultPlan` for chaos tests.

    The injector is consulted once per dispatched request, *before* the
    real dispatch: ``kill`` hard-exits (no drain, no flush — the
    SIGKILL-equivalent the supervisor must mask), ``wedge`` blocks the
    event loop (heartbeats freeze, the stall detector must fire),
    ``drop`` severs the connection without a response, and a float is
    seconds of injected latency (the slow replica the front door's
    per-attempt timeout must route around).
    """

    def __init__(
        self,
        shared: SharedSession,
        config: ServerConfig,
        injector: Optional[ServiceFaultInjector] = None,
    ) -> None:
        super().__init__(shared, config)
        self._injector = injector

    async def _dispatch(self, request: dict):
        if self._injector is not None:
            action = self._injector.on_request(request["op"])
            if action == "kill":
                os._exit(1)
            if action == "wedge":
                wedge_forever()  # pragma: no cover - never returns
            if action == "drop":
                raise ConnectionError("injected connection drop")
            if isinstance(action, float):
                await asyncio.sleep(action)
        return await super()._dispatch(request)


def _replica_main(
    name: str,
    data_dir: str,
    conn,
    heartbeats,
    slot: int,
    heartbeat_interval: float,
    replica_config: ReplicaConfig,
    host: str,
    session_options: dict,
) -> None:
    """One replica process: restore read-only, serve, beat, never write.

    Module-level so the fork/spawn contexts can target it.  The boot
    handshake reports ``{"port", "seq", "db_version"}`` through the
    pipe (or ``{"error"}``), after which the parent resyncs any log
    records this replica's restore predates.
    """
    try:
        store = DurableStore(data_dir, read_only=True)
        session, _report = store.restore(None, **session_options)
        shared = SharedSession(
            session=session,
            store=None,  # replicas never append; the front door logs
            answer_cache_size=replica_config.answer_cache_size,
            materialize=replica_config.materialize,
            materialize_pool=replica_config.materialize_pool,
        )
        plan = ServiceFaultPlan.from_env()
        injector = plan.injector(name) if plan is not None else None
        server = _ReplicaQueryServer(
            shared,
            ServerConfig(
                host=host,
                port=0,
                max_concurrent=replica_config.max_concurrent,
                max_queue=replica_config.max_queue,
                default_deadline=replica_config.default_deadline,
            ),
            injector=injector,
        )

        async def _main() -> None:
            await server.start()
            conn.send(
                {"port": server.port, "seq": store.seq, "db_version": session.db_version}
            )
            conn.close()

            async def _beat() -> None:
                while True:
                    heartbeats[slot] += 1
                    await asyncio.sleep(heartbeat_interval)

            beat_task = asyncio.get_running_loop().create_task(_beat())
            try:
                await server.serve_forever()
            finally:
                beat_task.cancel()

        asyncio.run(_main())
    except Exception as exc:  # pragma: no cover - boot failures are rare
        try:
            conn.send({"error": f"{type(exc).__name__}: {exc}"})
            conn.close()
        except OSError:
            pass
        os._exit(1)
    os._exit(0)


# ----------------------------------------------------------------------
# Front-door plumbing
# ----------------------------------------------------------------------
class _ReplicaLink:
    """A small pool of NDJSON connections to one replica server.

    Each replica connection serves one request at a time (the server
    dispatches per-connection sequentially), so concurrency comes from
    pooling: a request pops a free connection or dials a fresh one, and
    returns it on success.  Any failure — including the cancellation a
    per-attempt timeout injects — closes the connection instead of
    returning a stream with a half-read response on it.
    """

    def __init__(self, host: str, port: int, max_request_bytes: int) -> None:
        self.host = host
        self.port = port
        self._limit = max_request_bytes + 2
        self._free: list = []
        self._next_id = 0
        self.closed = False

    async def request(self, payload: dict) -> dict:
        if self._free:
            reader, writer = self._free.pop()
        else:
            reader, writer = await asyncio.open_connection(
                self.host, self.port, limit=self._limit
            )
        try:
            self._next_id += 1
            writer.write(encode({**payload, "id": self._next_id}))
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ConnectionError("replica closed the connection")
            response = json.loads(line)
            if not isinstance(response, dict):
                raise ConnectionError("replica sent a non-object response")
        except BaseException:
            writer.close()
            raise
        if self.closed:
            writer.close()
        else:
            self._free.append((reader, writer))
        return response

    def close(self) -> None:
        self.closed = True
        for _reader, writer in self._free:
            writer.close()
        self._free.clear()


class _Replica:
    """The front door's book-keeping for one replica process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.name = f"replica-{index}"
        self.state = STARTING
        self.generation = 0  # bumped per spawn; stale tasks check it
        self.process = None
        self.conn = None  # boot-handshake pipe (parent end)
        self.link: Optional[_ReplicaLink] = None
        self.port: Optional[int] = None
        self.applied_seq = 0  # last log record this replica has applied
        self.inflight = 0
        self.consecutive_failures = 0
        self.last_beat = -1
        self.last_beat_change = 0.0
        self.boot_deadline = 0.0
        self.next_probe = 0.0
        self.probe_task = None
        self.resync_task = None
        # Cumulative per-replica accounting, surfaced through stats.
        self.failures = 0
        self.restarts = 0
        self.resyncs = 0
        self.warmups = 0  # readmission warm-up passes completed
        self.warmed_queries = 0  # recent reads replayed across those passes

    def snapshot(self) -> dict:
        proc = self.process
        return {
            "state": self.state,
            "port": self.port,
            "pid": None if proc is None else proc.pid,
            "applied_seq": self.applied_seq,
            "inflight": self.inflight,
            "consecutive_failures": self.consecutive_failures,
            "failures": self.failures,
            "restarts": self.restarts,
            "resyncs": self.resyncs,
            "warmups": self.warmups,
            "warmed_queries": self.warmed_queries,
        }


_TRANSPORT_ERRORS = (
    asyncio.TimeoutError,
    ConnectionError,
    OSError,
    EOFError,
    ValueError,  # unparseable reply: the stream is not trustworthy
)


class ReplicaSet:
    """N replica query servers behind one failover front door.

    The front door owns the durable log (single writer, locked at
    boot), commits and validates every mutation on its own session,
    and serves no query itself — reads belong to the replicas, each a
    full :class:`SharedSession` stack restored read-only from the same
    log.  See the module docstring for the health/failover model.

    Async lifecycle mirrors :class:`QueryServer`: ``await start()``,
    ``await serve_forever()``, ``await shutdown()``; ``run()`` is the
    blocking CLI entry and :class:`ReplicaSetThread` the test harness.
    """

    def __init__(
        self,
        source: Optional[str] = None,
        *,
        data_dir=None,
        config: Optional[ReplicaSetConfig] = None,
        replica_config: Optional[ReplicaConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        fsync_interval: float = 0.0,
        snapshot_every: int = 1000,
        session_options: Optional[dict] = None,
    ) -> None:
        self.config = config or ReplicaSetConfig()
        self.replica_config = replica_config or ReplicaConfig()
        if self.config.replicas < 1:
            raise ValueError(f"need at least one replica, got {self.config.replicas}")
        self._owns_data_dir = data_dir is None
        self.data_dir = (
            tempfile.mkdtemp(prefix="repro-replicaset-")
            if data_dir is None
            else os.fspath(data_dir)
        )
        self._session_options = dict(session_options or {})
        self.store = DurableStore(
            self.data_dir,
            fsync_interval=fsync_interval,
            snapshot_every=snapshot_every,
        )
        # Fail a doubly-served --data-dir at construction, not first write.
        self.store.acquire_lock()
        try:
            # The front door's own session is the write oracle: mutations
            # validate-then-commit here first, so nothing unparseable can
            # ever reach the log and poison every replica's replay.  It
            # also provides the base snapshots compaction needs.
            self._session, self.replay_report = self.store.restore(source)
        except BaseException:
            self.store.close()
            raise
        self._tail: deque = deque(maxlen=self.config.resync_tail)
        self._mp = mp.get_context("fork")
        self._heartbeats = RawArray("q", self.config.replicas)
        self._replicas = [_Replica(i) for i in range(self.config.replicas)]
        self._front_cache: "OrderedDict[tuple, dict]" = OrderedDict()
        # The bounded recent-query log readmission warm-up replays: the
        # most recent *successful* distinct read texts, in recency order
        # (query and ask of the same text dedup — they prime the same
        # caches).  Values are ready-to-send ``warm`` request payloads.
        self._recent_reads: "OrderedDict[str, dict]" = OrderedDict()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        m = self.metrics
        self._requests = m.counter("front_requests_total", "requests at the front door")
        self._failovers = m.counter(
            "failovers_total", "read attempts retried on a different replica"
        )
        self._read_errors = m.counter(
            "replica_read_failures_total", "transport/timeout failures during reads"
        )
        self._writes = m.counter("front_writes_total", "mutations committed and logged")
        self._fanout_failures = m.counter(
            "write_fanout_failures_total", "replicas that missed a fanned write"
        )
        self._restarts = m.counter("replica_restarts_total", "replica processes respawned")
        self._resyncs = m.counter(
            "replica_resyncs_total", "log-replay resyncs completed before (re)admission"
        )
        self._warmups = m.counter(
            "replica_warmups_total", "readmission warm-up passes completed"
        )
        self._warmup_replays = m.counter(
            "warmup_queries_replayed_total",
            "recent reads replayed against resyncing replicas",
        )
        self._trips = m.counter("breaker_trips_total", "circuit breakers opened")
        self._stale_served = m.counter(
            "stale_reads_served_total", "degraded reads answered from the front cache"
        )
        self._degraded_errors = m.counter(
            "degraded_errors_total", "degraded reads with no cached answer"
        )
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._write_lock: Optional[asyncio.Lock] = None
        self._health_task = None
        self._shutdown_task = None
        self._writers: set = set()
        self._draining = False
        self._shutdown_started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, wait_healthy: bool = True) -> None:
        """Spawn the replicas and bind the front door.

        With ``wait_healthy`` (the default), blocks until every replica
        has booted, resynced, and joined the rotation — or raises if
        none makes it within ``boot_timeout``.
        """
        self._write_lock = asyncio.Lock()
        self._stopped = asyncio.Event()
        for rep in self._replicas:
            self._spawn(rep)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_request_bytes + 2,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._health_task = asyncio.get_running_loop().create_task(self._health_loop())
        if wait_healthy:
            await self._wait_healthy()

    async def _wait_healthy(self) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.boot_timeout
        while loop.time() < deadline:
            if all(rep.state == HEALTHY for rep in self._replicas):
                return
            await asyncio.sleep(0.02)
        if not any(rep.state == HEALTHY for rep in self._replicas):
            await self.shutdown()
            raise RuntimeError(
                f"no replica became healthy within {self.config.boot_timeout}s"
            )

    async def serve_forever(self) -> None:
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Stop the front door, the health loop, and every replica."""
        if self._shutdown_started:
            await self._stopped.wait()  # type: ignore[union-attr]
            return
        self._shutdown_started = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._health_task is not None:
            self._health_task.cancel()
        for rep in self._replicas:
            for task in (rep.probe_task, rep.resync_task):
                if task is not None:
                    task.cancel()
            rep.state = STOPPED
            if rep.link is not None:
                rep.link.close()
            proc = rep.process
            if proc is not None and proc.is_alive():
                proc.terminate()
        loop = asyncio.get_running_loop()
        for rep in self._replicas:
            proc = rep.process
            if proc is None:
                continue
            await loop.run_in_executor(None, proc.join, 5)
            if proc.is_alive():  # pragma: no cover - terminate sufficed so far
                proc.kill()
                await loop.run_in_executor(None, proc.join, 5)
        for writer in list(self._writers):
            writer.close()
        self.store.close()
        if self._owns_data_dir:
            shutil.rmtree(self.data_dir, ignore_errors=True)
        self._stopped.set()  # type: ignore[union-attr]

    def request_shutdown(self) -> None:
        """Sync + idempotent shutdown trigger (signal-handler friendly)."""
        if self._shutdown_task is None and not self._shutdown_started:
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown()
            )

    def run(self) -> None:
        """Blocking convenience: start, serve until shutdown or SIGINT/SIGTERM."""

        async def _main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()
            for sig in (signal_module.SIGINT, signal_module.SIGTERM):
                try:
                    loop.add_signal_handler(sig, self.request_shutdown)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
            try:
                await self.serve_forever()
            finally:
                await self.shutdown()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:  # pragma: no cover - no loop signal handlers
            for rep in self._replicas:
                proc = rep.process
                if proc is not None and proc.is_alive():
                    proc.kill()
            self.store.close()

    # ------------------------------------------------------------------
    # Replica processes
    # ------------------------------------------------------------------
    def _spawn(self, rep: _Replica) -> None:
        rep.generation += 1
        rep.state = STARTING
        rep.port = None
        rep.consecutive_failures = 0
        if rep.link is not None:
            rep.link.close()
            rep.link = None
        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        rep.conn = parent_conn
        rep.process = self._mp.Process(
            target=_replica_main,
            args=(
                rep.name,
                self.data_dir,
                child_conn,
                self._heartbeats,
                rep.index,
                self.config.heartbeat_interval,
                self.replica_config,
                self.config.host,
                self._session_options,
            ),
            name=rep.name,
            daemon=True,
        )
        rep.process.start()
        child_conn.close()
        now = self._now()
        rep.boot_deadline = now + self.config.boot_timeout
        rep.last_beat = self._heartbeats[rep.index]
        rep.last_beat_change = now
        rep.probe_task = None
        rep.resync_task = None

    def _restart(self, rep: _Replica, reason: str) -> None:
        """Kill (if needed) and respawn one replica; stale tasks see the bump."""
        self._restarts.inc()
        rep.restarts += 1
        for task in (rep.probe_task, rep.resync_task):
            if task is not None:
                task.cancel()
        proc = rep.process
        if proc is not None and proc.is_alive():
            proc.kill()
        if proc is not None:
            # Reap off-loop; SIGKILL cannot be refused, so join terminates.
            try:
                asyncio.get_running_loop().run_in_executor(None, proc.join, 10)
            except RuntimeError:  # pragma: no cover - no loop (teardown)
                proc.join(0.1)
        self._spawn(rep)

    @staticmethod
    def _now() -> float:
        try:
            return asyncio.get_running_loop().time()
        except RuntimeError:  # pragma: no cover - called before start()
            return 0.0

    # ------------------------------------------------------------------
    # Health: liveness, heartbeats, breaker probes
    # ------------------------------------------------------------------
    async def _health_loop(self) -> None:
        while not self._draining:
            self._health_tick()
            await asyncio.sleep(self.config.health_interval)

    def _health_tick(self) -> None:
        now = self._now()
        for rep in self._replicas:
            if rep.state == STOPPED:
                continue
            proc = rep.process
            if proc is None or proc.exitcode is not None:
                # Death (SIGKILL chaos, injected kill, crash): respawn.
                self._restart(rep, "process exited")
                continue
            beat = self._heartbeats[rep.index]
            if beat != rep.last_beat:
                rep.last_beat = beat
                rep.last_beat_change = now
            elif (
                rep.state != STARTING
                and now - rep.last_beat_change > self.config.stall_timeout
            ):
                # Alive but frozen: the wedged-event-loop fault.
                self._restart(rep, "heartbeat stalled")
                continue
            if rep.state == STARTING:
                self._poll_boot(rep, now)
            elif rep.state == OPEN and now >= rep.next_probe and rep.probe_task is None:
                rep.state = HALF_OPEN
                rep.probe_task = asyncio.get_running_loop().create_task(
                    self._probe(rep, rep.generation)
                )

    def _poll_boot(self, rep: _Replica, now: float) -> None:
        conn = rep.conn
        try:
            ready = conn is not None and conn.poll()
        except (OSError, EOFError):
            ready = False
        if ready:
            try:
                msg = conn.recv()
            except (OSError, EOFError):
                self._restart(rep, "boot handshake lost")
                return
            if "error" in msg:
                self._restart(rep, f"boot failed: {msg['error']}")
                return
            rep.port = int(msg["port"])
            rep.applied_seq = int(msg["seq"])
            rep.link = _ReplicaLink(
                self.config.host, rep.port, self.config.max_request_bytes
            )
            rep.state = RESYNCING
            rep.resync_task = asyncio.get_running_loop().create_task(
                self._resync_and_admit(rep, rep.generation)
            )
        elif now > rep.boot_deadline:
            self._restart(rep, "boot timeout")

    async def _probe(self, rep: _Replica, generation: int) -> None:
        """One half-open ping; success leads into resync + readmission."""
        ok = False
        try:
            response = await asyncio.wait_for(
                rep.link.request({"op": "ping"}), self.config.probe_timeout
            )
            ok = bool(response.get("ok"))
        except asyncio.CancelledError:
            raise
        except _TRANSPORT_ERRORS:
            ok = False
        if rep.generation != generation or rep.state != HALF_OPEN:
            return  # restarted or torn down while we probed
        rep.probe_task = None
        if not ok:
            rep.state = OPEN
            rep.next_probe = self._now() + self.config.probe_interval
            return
        rep.state = RESYNCING
        await self._resync_and_admit(rep, generation)

    # ------------------------------------------------------------------
    # Resync: replay the log records a replica missed, then admit it
    # ------------------------------------------------------------------
    async def _resync_and_admit(self, rep: _Replica, generation: int) -> None:
        warmed = False
        while True:
            if rep.generation != generation or rep.state != RESYNCING:
                return
            if rep.applied_seq >= self.store.seq:
                if not warmed:
                    # Warm-up happens once per admission, caught-up but
                    # *before* the HEALTHY flip and outside the write
                    # lock: replaying reads must not block writers, and
                    # a write landing mid-warm-up simply sends the loop
                    # back through tail replay (fan-out skips RESYNCING
                    # replicas, so applied_seq lags again and the gap is
                    # bridged above before admission is re-checked).
                    warmed = True
                    if not await self._warm_replica(rep, generation):
                        return
                    continue
                # Admission happens under the write lock: a write either
                # committed before (its record is in applied_seq) or
                # will fan out to this now-healthy replica — no record
                # can fall between the check and the admission.
                async with self._write_lock:
                    if rep.generation != generation or rep.state != RESYNCING:
                        return
                    if rep.applied_seq >= self.store.seq:
                        rep.state = HEALTHY
                        rep.consecutive_failures = 0
                        rep.resyncs += 1
                        self._resyncs.inc()
                        return
                continue
            records = [r for r in self._tail if r["seq"] > rep.applied_seq]
            if not records or records[0]["seq"] != rep.applied_seq + 1:
                # The bounded tail cannot bridge the gap; a restart
                # re-restores snapshot + full log from disk instead.
                self._restart(rep, "resync gap exceeds the in-memory tail")
                return
            for record in records:
                if rep.generation != generation:
                    return
                try:
                    response = await asyncio.wait_for(
                        rep.link.request(_record_request(record)),
                        self.config.write_timeout,
                    )
                except asyncio.CancelledError:
                    raise
                except _TRANSPORT_ERRORS:
                    self._trip(rep, generation)
                    return
                if not response.get("ok"):
                    self._trip(rep, generation)
                    return
                rep.applied_seq = record["seq"]

    async def _warm_replica(self, rep: _Replica, generation: int) -> bool:
        """Replay the recent-read log against ``rep`` before readmission.

        Most-recent first, bounded by ``warmup_queries``.  Returns False
        when admission must be abandoned (the replica died or a transport
        failure tripped its breaker); typed errors from individual
        replays — a query whose rules changed since it was logged — are
        skipped, not fatal: warm-up is an optimization, the replica is
        still consistent.
        """
        payloads = list(reversed(self._recent_reads.values()))
        replayed = 0
        for payload in payloads:
            if rep.generation != generation or rep.state != RESYNCING:
                return False
            try:
                await asyncio.wait_for(
                    rep.link.request(dict(payload)), self.config.read_timeout
                )
            except asyncio.CancelledError:
                raise
            except _TRANSPORT_ERRORS:
                self._trip(rep, generation)
                return False
            replayed += 1
        if rep.generation != generation or rep.state != RESYNCING:
            return False
        rep.warmups += 1
        rep.warmed_queries += replayed
        self._warmups.inc()
        self._warmup_replays.inc(replayed)
        return True

    def _trip(self, rep: _Replica, generation: Optional[int] = None) -> None:
        """Open the breaker: out of rotation until a probe + resync pass."""
        if generation is not None and rep.generation != generation:
            return
        if rep.state in (STOPPED, STARTING):
            return
        if rep.state != OPEN:
            self._trips.inc()
        rep.state = OPEN
        rep.probe_task = None
        rep.next_probe = self._now() + self.config.probe_interval
        if rep.link is not None:
            rep.link.close()
            rep.link = _ReplicaLink(
                self.config.host, rep.port, self.config.max_request_bytes
            )

    # ------------------------------------------------------------------
    # The front door protocol loop
    # ------------------------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> bool:
        try:
            writer.write(encode(payload))
            await writer.drain()
            return True
        except (ConnectionError, RuntimeError):
            return False

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._send(
                        writer,
                        error_payload(
                            "oversized",
                            f"request line exceeds {self.config.max_request_bytes} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_request(line, self.config.max_request_bytes)
                except ServiceError as exc:
                    rid = getattr(exc, "request_id", None)
                    if not await self._send(writer, exc.payload(rid)):
                        break
                    if exc.error_type == "oversized":
                        break
                    continue
                response, close = await self._dispatch(request)
                if not await self._send(writer, response) or close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: dict) -> tuple[dict, bool]:
        op = request["op"]
        rid = request.get("id")
        self._requests.inc()
        if op == "ping":
            return {"id": rid, "ok": True, "op": "ping"}, False
        if op == "stats":
            return {"id": rid, "ok": True, "op": "stats", "stats": self.stats()}, False
        if op == "shutdown":
            asyncio.get_running_loop().create_task(self.shutdown())
            return {"id": rid, "ok": True, "op": "shutdown", "draining": True}, True
        if self._draining:
            return error_payload("shutting_down", "replica set is draining", rid), True
        if op in ("query", "ask", "warm"):
            text = request.get("query")
            if not isinstance(text, str) or not text.strip():
                return error_payload("bad_request", f"{op} needs a 'query' string", rid), False
            return await self._read(request, rid, op, text)
        field = "facts" if op == "add_facts" else "rules"
        text = request.get(field)
        if not isinstance(text, str):
            return error_payload("bad_request", f"{op} needs a '{field}' string", rid), False
        return await self._write(rid, op, field, text)

    # ------------------------------------------------------------------
    # Reads: least-inflight routing, failover, stale fallback
    # ------------------------------------------------------------------
    def _pick_replica(self, exclude: set) -> Optional[_Replica]:
        candidates = [
            rep
            for rep in self._replicas
            if rep.state == HEALTHY and rep.name not in exclude and rep.link is not None
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda rep: rep.inflight)

    async def _read(
        self, request: dict, rid, op: str, text: str
    ) -> tuple[dict, bool]:
        payload = {"op": op, "query": text}
        if request.get("timeout") is not None:
            payload["timeout"] = request["timeout"]
        attempt_timeout = min(
            float(request.get("timeout") or self.config.read_timeout),
            self.config.read_timeout,
        )
        tried: set = set()
        attempts = 0
        while True:
            rep = self._pick_replica(tried)
            if rep is None:
                break
            tried.add(rep.name)
            attempts += 1
            if attempts > 1:
                self._failovers.inc()
            generation = rep.generation
            rep.inflight += 1
            try:
                response = await asyncio.wait_for(
                    rep.link.request(payload), attempt_timeout
                )
            except asyncio.CancelledError:
                raise
            except _TRANSPORT_ERRORS:
                self._read_errors.inc()
                self._note_failure(rep, generation)
                continue
            finally:
                rep.inflight -= 1
            # The replica answered — typed errors included, it is alive.
            if rep.generation == generation:
                rep.consecutive_failures = 0
            response["id"] = rid
            response["replica"] = rep.name
            if response.get("ok") and op != "warm":
                self._cache_answer(op, text, response)
                self._record_recent(text)
            return response, False
        return self._degraded_read(op, text, rid), False

    def _note_failure(self, rep: _Replica, generation: int) -> None:
        if rep.generation != generation or rep.state != HEALTHY:
            return
        rep.failures += 1
        rep.consecutive_failures += 1
        if rep.consecutive_failures >= self.config.failure_threshold:
            self._trip(rep, generation)

    def _cache_answer(self, op: str, text: str, response: dict) -> None:
        if self.config.front_cache_size < 1:
            return
        entry = {
            k: v for k, v in response.items() if k not in ("id", "replica")
        }
        cache = self._front_cache
        cache[(op, text)] = entry
        cache.move_to_end((op, text))
        while len(cache) > self.config.front_cache_size:
            cache.popitem(last=False)

    def _record_recent(self, text: str) -> None:
        """Note one successful read in the bounded warm-up replay log.

        Stored as ``warm`` requests: the replica evaluates them exactly
        like queries (same graph/answer-cache effects) but ships no rows
        back, and the distinct op keeps client-scoped chaos plans
        (``only_ops: ["query"]``) from firing on internal replays.
        """
        if self.config.warmup_queries < 1:
            return
        log = self._recent_reads
        log[text] = {"op": "warm", "query": text}
        log.move_to_end(text)
        while len(log) > self.config.warmup_queries:
            log.popitem(last=False)

    def _degraded_read(self, op: str, text: str, rid) -> dict:
        cached = self._front_cache.get((op, text))
        if cached is not None:
            self._stale_served.inc()
            return {**cached, "id": rid, "stale": True}
        self._degraded_errors.inc()
        return error_payload(
            "degraded",
            "no healthy replica and no cached answer for this query; retry shortly",
            rid,
        )

    # ------------------------------------------------------------------
    # Writes: validate on the oracle, log, fan out, ack
    # ------------------------------------------------------------------
    def _commit_write(self, op: str, text: str) -> Optional[int]:
        """Commit on the oracle session and append to the log (executor thread).

        Returns the record's seq, or None for a no-op commit (nothing
        to replay, nothing to fan out).  Raises the session's own
        validation errors — nothing invalid is ever logged.
        """
        before = self._session.db_version
        if op == "add_facts":
            self._session.add_facts(text)
        else:
            self._session.add_rules(text)
        if self._session.db_version == before:
            return None
        seq = self.store.record(op, text)
        if self.store.should_compact():
            self.store.compact(self._session)
        return seq

    async def _write(self, rid, op: str, field: str, text: str) -> tuple[dict, bool]:
        loop = asyncio.get_running_loop()
        async with self._write_lock:  # type: ignore[union-attr]
            try:
                seq = await loop.run_in_executor(None, self._commit_write, op, text)
            except (ProgramError, ValueError, SyntaxError) as exc:
                return error_payload("bad_request", str(exc), rid), False
            except Exception as exc:  # pragma: no cover - defensive
                return error_payload("internal", f"{type(exc).__name__}: {exc}", rid), False
            self._writes.inc()
            applied = len(self._replicas)
            if seq is not None:
                record = {"seq": seq, "op": op, field: text}
                self._tail.append(record)
                targets = [rep for rep in self._replicas if rep.state == HEALTHY]
                results = await asyncio.gather(
                    *(self._forward_write(rep, record) for rep in targets)
                )
                applied = sum(1 for ok in results if ok)
        response = {"id": rid, "ok": True, "op": op, "replicas_applied": applied}
        if seq is not None:
            response["seq"] = seq
        return response, False

    async def _forward_write(self, rep: _Replica, record: dict) -> bool:
        """Apply one logged record at one replica; failure trips its breaker.

        The client's ack never depends on this succeeding — the record
        is already durable in the log, and a replica that missed it is
        simply out of rotation until resync replays it.
        """
        generation = rep.generation
        try:
            response = await asyncio.wait_for(
                rep.link.request(_record_request(record)), self.config.write_timeout
            )
        except asyncio.CancelledError:
            raise
        except _TRANSPORT_ERRORS:
            self._fanout_failures.inc()
            self._trip(rep, generation)
            return False
        if not response.get("ok"):
            self._fanout_failures.inc()
            self._trip(rep, generation)
            return False
        if rep.generation == generation:
            rep.applied_seq = record["seq"]
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def seq(self) -> int:
        return self.store.seq

    def healthy_count(self) -> int:
        return sum(1 for rep in self._replicas if rep.state == HEALTHY)

    def stats(self) -> dict:
        """The stats-op payload: per-replica health plus set-wide counters."""
        return {
            "replication": {
                "replicas": {rep.name: rep.snapshot() for rep in self._replicas},
                "healthy": self.healthy_count(),
                "seq": self.store.seq,
                "db_version": self._session.db_version,
                "failovers": self._failovers.value,
                "read_failures": self._read_errors.value,
                "breaker_trips": self._trips.value,
                "restarts": self._restarts.value,
                "resyncs": self._resyncs.value,
                "warmups": self._warmups.value,
                "warmup_queries_replayed": self._warmup_replays.value,
                "recent_reads_logged": len(self._recent_reads),
                "writes": self._writes.value,
                "fanout_failures": self._fanout_failures.value,
                "stale_served": self._stale_served.value,
                "degraded_errors": self._degraded_errors.value,
                "front_cache_entries": len(self._front_cache),
            },
            "persistence": self.store.stats(),
            "metrics": self.metrics.snapshot(),
        }


def _record_request(record: dict) -> dict:
    """One tail/log record as the wire request that applies it."""
    if record["op"] == "add_facts":
        return {"op": "add_facts", "facts": record["facts"]}
    return {"op": "add_rules", "rules": record["rules"]}


# ----------------------------------------------------------------------
class ReplicaSetThread:
    """A :class:`ReplicaSet` on a background thread (tests and benchmarks).

    Mirrors :class:`~repro.service.server.ServerThread`: ``start()``
    blocks until the front door is bound *and* every replica is
    healthy, returning the port; ``stop()`` drains from any thread.

        with ReplicaSetThread(PROGRAM, data_dir=d) as port:
            ServiceClient(port=port).query("anc(ann, Z)")
    """

    def __init__(self, *args, **kwargs) -> None:
        self._args = args
        self._kwargs = kwargs
        self.replica_set: Optional[ReplicaSet] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def start(self, timeout: float = 60.0) -> int:
        self._thread = threading.Thread(
            target=self._main, name="repro-replicaset", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("replica set did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("replica set failed to start") from self._startup_error
        assert self.port is not None
        return self.port

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - defensive
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            self.replica_set = ReplicaSet(*self._args, **self._kwargs)
            await self.replica_set.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = self.replica_set.port
        self._ready.set()
        await self.replica_set.serve_forever()

    def stop(self, timeout: float = 60.0) -> None:
        loop, rset, thread = self._loop, self.replica_set, self._thread
        if thread is None:
            return
        if loop is not None and rset is not None and thread.is_alive():
            try:
                loop.call_soon_threadsafe(rset.request_shutdown)
            except RuntimeError:
                pass
        thread.join(timeout)
        if thread.is_alive():
            raise RuntimeError("replica set thread did not stop")

    def __enter__(self) -> int:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
