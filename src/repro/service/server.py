"""The concurrent query service: an asyncio TCP frontend over a SharedSession.

The paper evaluates one query per network of processes; the serving
layer multiplexes *many* queries over one permanent PIDB/EDB.  The
server speaks the newline-delimited JSON protocol of
:mod:`repro.service.protocol` and applies three serving disciplines the
single-query engine has no notion of:

**Admission control.**  At most ``max_concurrent`` evaluations run at
once (an asyncio semaphore; each evaluation occupies one thread of a
dedicated executor).  At most ``max_queue`` further requests may wait
for a slot; beyond that the server answers ``overloaded`` *immediately*
— a typed rejection in microseconds beats an unbounded queue melting
down under a spike.  Every request carries a deadline (its ``timeout``
field, else ``default_deadline``) spanning queue wait plus evaluation;
a miss answers ``deadline_exceeded`` (the orphaned evaluation finishes
on its thread, releases its slot, and — thanks to coalescing and the
graph cache — its work is not wasted for later identical queries).

**Evaluation offload.**  Evaluations run in a thread pool via
``run_in_executor``, keeping the event loop free for protocol work.
The SharedSession's ``runtime=`` option decides what each evaluation
thread actually does: simulate in-process, or drive the supervised
pool/mp runtimes from PRs 2–4 (in which case real parallelism comes
from worker processes, and ``EvaluationTimeout``/retry/degradation
surface through the same typed error path).

**Graceful drain.**  ``shutdown`` (the op, or :meth:`QueryServer.
shutdown`) stops accepting connections, lets in-flight evaluations
finish within ``drain_timeout``, then stops — no severed evaluations,
no zombie executor threads.

Metrics flow into the same :class:`~repro.service.metrics
.MetricsRegistry` the SharedSession reports into; the ``stats`` op
snapshots everything.
"""

from __future__ import annotations

import asyncio
import signal as signal_module
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..core.program import ProgramError
from ..runtime.supervision import EvaluationTimeout, RuntimeFailure
from .metrics import MetricsRegistry
from .protocol import (
    MAX_REQUEST_BYTES,
    ServiceError,
    decode_request,
    encode,
    error_payload,
    rows_to_wire,
)
from .shared_session import SharedSession

__all__ = ["ServerConfig", "QueryServer", "ServerThread"]


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for one :class:`QueryServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands on server.port
    max_concurrent: int = 4  # evaluation slots (executor threads)
    max_queue: int = 16  # admitted-but-waiting ceiling before rejection
    default_deadline: float = 30.0  # seconds, queue wait + evaluation
    max_request_bytes: int = MAX_REQUEST_BYTES
    drain_timeout: float = 10.0  # grace for in-flight work at shutdown


class QueryServer:
    """Serve one :class:`SharedSession` over TCP with admission control."""

    def __init__(
        self,
        shared: SharedSession,
        config: Optional[ServerConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.shared = shared
        self.config = config or ServerConfig()
        self.metrics = metrics if metrics is not None else shared.metrics
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._stopped: Optional[asyncio.Event] = None
        self._drain_abort: Optional[asyncio.Event] = None
        self._shutdown_task: Optional[asyncio.Task] = None  # strong ref: no GC mid-drain
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrent,
            thread_name_prefix="repro-eval",
        )
        self._pending: set = set()  # in-flight evaluation futures
        self._writers: set = set()  # open connection writers (for drain)
        self._queue_depth = 0
        self._active_dispatches = 0  # requests between decode and response write
        self._draining = False
        self._shutdown_started = False
        m = self.metrics
        self._requests = m.counter("server_requests_total", "requests received")
        self._rejections = m.counter(
            "server_rejections_total", "typed overload rejections"
        )
        self._deadline_misses = m.counter(
            "server_deadline_exceeded_total", "requests that outran their deadline"
        )
        self._errors = m.counter(
            "server_errors_total", "requests answered with any error payload"
        )
        self._queue_wait = m.histogram(
            "queue_wait_seconds", help="admission wait before an evaluation slot"
        )
        self._request_seconds = m.histogram(
            "request_seconds", help="full request wall time, admission included"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and begin accepting; ``self.port`` carries the bound port."""
        self._slots = asyncio.Semaphore(self.config.max_concurrent)
        self._stopped = asyncio.Event()
        self._drain_abort = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_request_bytes + 2,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` has fully completed."""
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight evaluations, release the executor."""
        if self._shutdown_started:
            await self._stopped.wait()  # type: ignore[union-attr]
            return
        self._shutdown_started = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        orphans: set = set(self._pending)
        if drain:
            # Wait in short slices so a second shutdown signal (the
            # universal "stop NOW" convention) can abandon the drain.
            # Draining means *responses delivered*, not just evaluations
            # finished: a request's answer is written by its dispatch
            # coroutine after the evaluation future completes, so wait
            # for the active-dispatch count too — closing writers on
            # future completion alone would sever the final responses.
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.config.drain_timeout
            abort = self._drain_abort
            while (orphans or self._active_dispatches) and (
                abort is None or not abort.is_set()
            ):
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                if orphans:
                    _, orphans = await asyncio.wait(
                        orphans, timeout=min(0.05, remaining)
                    )
                else:
                    await asyncio.sleep(min(0.05, remaining))
        for writer in list(self._writers):
            writer.close()
        # wait=True would block the loop if an orphan is still evaluating;
        # with no orphans it returns immediately and every thread is joined.
        self._executor.shutdown(wait=not orphans)
        if self.shared.store is not None:
            # Make any batched-but-unsynced log records durable before
            # the process goes away.
            self.shared.store.close()
        self._stopped.set()  # type: ignore[union-attr]

    def request_shutdown(self) -> None:
        """Begin a graceful drain; a repeat call abandons the drain.

        Sync and idempotent, so it is directly usable as a signal
        handler on the event loop's thread (``loop.add_signal_handler``).
        The created task is retained on the server — asyncio keeps only
        weak references to tasks, and a garbage-collected drain would
        stop half way.
        """
        if self._shutdown_task is None and not self._shutdown_started:
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown()
            )
        elif self._drain_abort is not None:
            self._drain_abort.set()

    def install_signal_handlers(
        self, signals: Iterable[int] = (signal_module.SIGINT, signal_module.SIGTERM)
    ) -> bool:
        """SIGINT/SIGTERM → graceful drain (twice → immediate stop).

        Must run on the event loop's (main) thread.  Returns False where
        loop signal handlers are unsupported (non-unix platforms or an
        embedded non-main thread); Ctrl-C then surfaces as
        KeyboardInterrupt and :meth:`run` falls back to a best-effort
        executor join.
        """
        loop = asyncio.get_running_loop()
        installed = False
        for sig in signals:
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
                installed = True
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        return installed

    def run(self) -> None:
        """Blocking convenience: start and serve until shutdown or Ctrl-C.

        Installs the SIGINT/SIGTERM handlers, so an interrupt triggers
        the same graceful drain as the ``shutdown`` op instead of
        tearing down mid-evaluation.
        """

        async def _main() -> None:
            await self.start()
            self.install_signal_handlers()
            try:
                await self.serve_forever()
            finally:
                await self.shutdown()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            # Signal handlers were unavailable, so the interrupt tore the
            # loop down uncleanly; join evaluation threads off-loop so
            # nothing leaks even on this path.
            self._executor.shutdown(wait=True)
            if self.shared.store is not None:
                self.shared.store.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> bool:
        if not payload.get("ok", False):
            self._errors.inc()
        try:
            writer.write(encode(payload))
            await writer.drain()
            return True
        except (ConnectionError, RuntimeError):
            return False

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # The stream limit tripped: the line is longer than
                    # max_request_bytes and framing is unrecoverable.
                    await self._send(
                        writer,
                        error_payload(
                            "oversized",
                            f"request line exceeds {self.config.max_request_bytes} bytes",
                        ),
                    )
                    break
                if not line:
                    break  # EOF: client closed
                if not line.strip():
                    continue
                try:
                    request = decode_request(line, self.config.max_request_bytes)
                except ServiceError as exc:
                    rid = getattr(exc, "request_id", None)
                    if not await self._send(writer, exc.payload(rid)):
                        break
                    if exc.error_type == "oversized":
                        break
                    continue
                self._active_dispatches += 1
                try:
                    response, close = await self._dispatch(request)
                    sent = await self._send(writer, response)
                finally:
                    self._active_dispatches -= 1
                if not sent or close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-conversation; evaluations finish solo
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, request: dict) -> tuple[dict, bool]:
        """One validated request to one response; (payload, close-conn)."""
        op = request["op"]
        rid = request.get("id")
        self._requests.inc()
        if op == "ping":
            return {"id": rid, "ok": True, "op": "ping"}, False
        if op == "stats":
            return {"id": rid, "ok": True, "op": "stats", "stats": self._stats()}, False
        if op == "shutdown":
            asyncio.get_running_loop().create_task(self.shutdown())
            return {"id": rid, "ok": True, "op": "shutdown", "draining": True}, True
        if self._draining:
            return (
                error_payload("shutting_down", "server is draining", rid),
                True,
            )
        try:
            fn = self._work_for(op, request)
        except ServiceError as exc:
            return exc.payload(rid), False
        start = asyncio.get_running_loop().time()
        deadline = float(request.get("timeout") or self.config.default_deadline)
        try:
            await self._admit(deadline)
        except ServiceError as exc:
            if exc.error_type == "overloaded":
                self._rejections.inc()
            return exc.payload(rid), False
        queue_wait = asyncio.get_running_loop().time() - start
        self._queue_wait.observe(queue_wait)
        try:
            value = await self._evaluate(fn, deadline - queue_wait)
        except asyncio.TimeoutError:
            self._deadline_misses.inc()
            return (
                error_payload(
                    "deadline_exceeded",
                    f"request missed its {deadline}s deadline "
                    f"({queue_wait:.3f}s of it queued)",
                    rid,
                ),
                False,
            )
        except Exception as exc:
            return self._failure(exc, rid), False
        elapsed = asyncio.get_running_loop().time() - start
        self._request_seconds.observe(elapsed)
        return self._success(op, rid, value, elapsed), False

    def _work_for(self, op: str, request: dict) -> Callable[[], object]:
        """The executor thunk for one evaluated op; validates its fields."""
        if op in ("query", "ask", "warm"):
            text = request.get("query")
            if not isinstance(text, str) or not text.strip():
                raise ServiceError("bad_request", f"{op} needs a 'query' string")
            return lambda: self.shared.query_detailed(text)
        if op == "add_facts":
            text = request.get("facts")
            if not isinstance(text, str):
                raise ServiceError("bad_request", "add_facts needs a 'facts' string")
            return lambda: self.shared.add_facts(text)
        if op == "add_rules":
            text = request.get("rules")
            if not isinstance(text, str):
                raise ServiceError("bad_request", "add_rules needs a 'rules' string")
            return lambda: self.shared.add_rules(text)
        raise ServiceError("unknown_op", f"unhandled op {op!r}")  # pragma: no cover

    async def _admit(self, deadline: float) -> None:
        """Take an evaluation slot, or reject typed — never queue unboundedly."""
        assert self._slots is not None
        if self._slots.locked() and self._queue_depth >= self.config.max_queue:
            raise ServiceError(
                "overloaded",
                f"{self.config.max_concurrent} evaluations active, "
                f"{self._queue_depth} queued (max_queue={self.config.max_queue}); "
                "retry with backoff",
            )
        self._queue_depth += 1
        try:
            try:
                await asyncio.wait_for(self._slots.acquire(), timeout=deadline)
            except asyncio.TimeoutError:
                raise ServiceError(
                    "deadline_exceeded",
                    f"deadline passed after {deadline:.3f}s waiting for a slot",
                ) from None
        finally:
            self._queue_depth -= 1

    async def _evaluate(self, fn: Callable[[], object], remaining: float):
        """Offload ``fn`` to the executor under the remaining deadline.

        The slot is released by the future's completion callback — on a
        deadline miss the evaluation is *orphaned*, keeps its slot until
        it actually finishes, and its result still lands in the caches.
        """
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, fn)
        self._pending.add(future)
        future.add_done_callback(self._evaluation_finished)
        return await asyncio.wait_for(asyncio.shield(future), max(remaining, 0.001))

    def _evaluation_finished(self, future) -> None:
        self._pending.discard(future)
        if self._slots is not None:
            self._slots.release()
        if not future.cancelled():
            future.exception()  # retrieve, so orphans never warn at GC

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def _success(self, op: str, rid, value, elapsed: float) -> dict:
        payload = {"id": rid, "ok": True, "op": op, "elapsed": round(elapsed, 6)}
        if op == "warm":
            # Cache priming: report what got warm, skip the answer rows.
            outcome = value
            payload.update(
                cache_hit=outcome.cache_hit,
                answer_cached=outcome.answer_cached,
                count=len(outcome.answers),
            )
            return payload
        if op in ("query", "ask"):
            outcome = value  # a QueryOutcome
            payload.update(
                coalesced=outcome.coalesced,
                shared=outcome.shared,
                cache_hit=outcome.cache_hit,
                answer_cached=outcome.answer_cached,
                attempts=outcome.attempts,
                degraded=outcome.degraded,
            )
            if outcome.db_version is not None:
                payload["db_version"] = outcome.db_version
            if op == "query":
                payload["answers"] = self._wire_answers(outcome)
                payload["count"] = len(outcome.answers)
            else:
                payload["result"] = bool(outcome.answers)
        return payload

    @staticmethod
    def _wire_answers(outcome) -> list:
        """Wire-encoded answer rows, memoised on the answer-cache entry.

        Every cache hit at a given version hands back the *same*
        :class:`CachedAnswer` object, so rendering a hot answer set once
        and hanging the rows off its ``renders`` memo turns repeat
        responses from O(rows) encoding work into a dict lookup.
        :meth:`CachedAnswer.render` owns the check-compute-store cycle —
        it is race-free for any number of serving threads and charges
        the rendered rows against the cache's byte budget.
        """
        entry = outcome.cache_entry
        if entry is None:
            return rows_to_wire(outcome.answers)
        return entry.render("wire", rows_to_wire)

    def _failure(self, exc: Exception, rid) -> dict:
        if isinstance(exc, ServiceError):
            return exc.payload(rid)
        if isinstance(exc, EvaluationTimeout):
            self._deadline_misses.inc()
            return error_payload("deadline_exceeded", str(exc), rid)
        if isinstance(exc, RuntimeFailure):
            return error_payload(
                "evaluation_error", str(exc).splitlines()[0], rid
            )
        if isinstance(exc, (ProgramError, ValueError, SyntaxError)):
            return error_payload("bad_request", str(exc), rid)
        return error_payload(
            "internal", f"{type(exc).__name__}: {exc}", rid
        )

    def _stats(self) -> dict:
        return {
            "metrics": self.metrics.snapshot(),
            "session": self.shared.stats(),
            "server": {
                "active_evaluations": len(self._pending),
                "queued": self._queue_depth,
                "draining": self._draining,
                "max_concurrent": self.config.max_concurrent,
                "max_queue": self.config.max_queue,
            },
        }


# ----------------------------------------------------------------------
class ServerThread:
    """A :class:`QueryServer` on a background thread (tests and benchmarks).

    ``start()`` blocks until the server is bound and returns the port;
    ``stop()`` triggers a graceful drain from any thread and joins.
    Usable as a context manager::

        with ServerThread(shared) as port:
            ServiceClient(port=port) ...
    """

    def __init__(
        self,
        shared: SharedSession,
        config: Optional[ServerConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._shared = shared
        self._config = config
        self._metrics = metrics
        self.server: Optional[QueryServer] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def start(self, timeout: float = 10.0) -> int:
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("query server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("query server failed to start") from self._startup_error
        assert self.port is not None
        return self.port

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - defensive
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = QueryServer(self._shared, self._config, self._metrics)
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = self.server.port
        self._ready.set()
        await self.server.serve_forever()

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain from any thread; join the server thread."""
        loop, server, thread = self._loop, self.server, self._thread
        if thread is None:
            return
        if loop is not None and server is not None and thread.is_alive():
            try:
                # request_shutdown retains its task; a bare ensure_future
                # could be garbage-collected mid-drain (weak task refs).
                loop.call_soon_threadsafe(server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed — thread is on its way out
        thread.join(timeout)
        if thread.is_alive():
            raise RuntimeError("query server thread did not stop")

    def __enter__(self) -> int:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
