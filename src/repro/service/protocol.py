"""The query service wire protocol: newline-delimited JSON, typed errors.

One request per line, one response per line, UTF-8 JSON.  Requests are
objects with an ``op`` plus op-specific fields and an optional ``id``
the response echoes::

    {"id": 1, "op": "query", "query": "anc(ann, Z)", "timeout": 5.0}
    {"id": 1, "ok": true, "answers": [["bob"], ["cal"]], "count": 2, ...}

Failures are *typed*, so clients can distinguish their own mistakes
from overload from deadline misses without parsing prose::

    {"id": 1, "ok": false,
     "error": {"type": "overloaded", "message": "admission queue full ..."}}

The error taxonomy (:data:`ERROR_TYPES`) is part of the protocol; the
server maps internal exceptions onto it and never leaks a traceback
across the wire (tracebacks go to the server log — the client gets the
type and the first line).

Answer rows travel as JSON arrays.  JSON has no tuples and no atoms, so
``rows_to_wire`` keeps ints/floats/bools/strings as-is and stringifies
anything richer; ``wire_to_rows`` restores the ``set[tuple]`` shape on
the client.  Round-tripping is exact for the numeric/string constants
every workload in this repo uses.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

__all__ = [
    "MAX_REQUEST_BYTES",
    "OPS",
    "ERROR_TYPES",
    "ServiceError",
    "encode",
    "decode_request",
    "error_payload",
    "rows_to_wire",
    "wire_to_rows",
]

#: Default per-line ceiling; a line longer than this is rejected as
#: ``oversized`` and the connection closed (framing can no longer be
#: trusted once a line has been truncated).
MAX_REQUEST_BYTES = 1_000_000

#: Every operation the server understands.  ``warm`` is the cache-priming
#: variant of ``query`` the replication front door replays its recent-read
#: log through before readmitting a resynced replica: same evaluation,
#: same cache effects, but no answer rows on the wire — and a distinct op
#: name, so chaos plans scoped to client traffic (``only_ops: ["query"]``)
#: do not fire on internal warm-up replays.
OPS = ("query", "ask", "warm", "add_facts", "add_rules", "stats", "ping", "shutdown")

#: The closed set of error types a response may carry.
ERROR_TYPES = (
    "bad_request",  # malformed JSON, missing fields, bad program text
    "unknown_op",  # op not in OPS
    "oversized",  # request line exceeded the byte ceiling
    "overloaded",  # admission queue full — retry later, ideally with backoff
    "deadline_exceeded",  # per-request deadline passed before the answer
    "shutting_down",  # server is draining; no new work accepted
    "evaluation_error",  # the runtime failed (crash/stall after retries)
    "degraded",  # no healthy replica behind the front door and no cached answer
    "internal",  # anything else; a server-side bug surfaced safely
)


class ServiceError(Exception):
    """A protocol-level failure with a wire ``type`` from :data:`ERROR_TYPES`."""

    def __init__(self, error_type: str, message: str) -> None:
        if error_type not in ERROR_TYPES:
            raise ValueError(f"unknown service error type {error_type!r}")
        self.error_type = error_type
        super().__init__(message)

    def payload(self, request_id=None) -> dict:
        return error_payload(self.error_type, str(self), request_id)


def error_payload(error_type: str, message: str, request_id=None) -> dict:
    """The standard failure response object."""
    payload = {
        "id": request_id,
        "ok": False,
        "error": {"type": error_type, "message": message},
    }
    return payload


def encode(payload: dict) -> bytes:
    """One response/request as a single framed line."""
    return json.dumps(payload, separators=(",", ":"), default=str).encode() + b"\n"


def decode_request(line: bytes, max_bytes: int = MAX_REQUEST_BYTES) -> dict:
    """Parse one request line; raises :class:`ServiceError` on bad input."""
    if len(line) > max_bytes:
        raise ServiceError(
            "oversized", f"request of {len(line)} bytes exceeds limit {max_bytes}"
        )
    try:
        request = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServiceError("bad_request", f"malformed JSON: {exc}") from None
    if not isinstance(request, dict):
        raise ServiceError(
            "bad_request", f"request must be a JSON object, got {type(request).__name__}"
        )

    def reject(error_type: str, message: str) -> ServiceError:
        # Once the JSON parsed, errors can still echo the request id.
        exc = ServiceError(error_type, message)
        exc.request_id = request.get("id")
        return exc

    op = request.get("op")
    if not isinstance(op, str):
        raise reject("bad_request", "request is missing a string 'op'")
    if op not in OPS:
        raise reject("unknown_op", f"unknown op {op!r}; expected one of {OPS}")
    timeout = request.get("timeout")
    if timeout is not None and (
        not isinstance(timeout, (int, float)) or isinstance(timeout, bool) or timeout <= 0
    ):
        raise reject(
            "bad_request", f"timeout must be a positive number, got {timeout!r}"
        )
    return request


# ----------------------------------------------------------------------
_WIRE_SAFE = (str, int, float, bool, type(None))


def rows_to_wire(rows: Iterable[tuple]) -> list[list]:
    """Answer tuples as sorted JSON arrays (deterministic over the wire)."""
    wire = [
        [value if isinstance(value, _WIRE_SAFE) else str(value) for value in row]
        for row in rows
    ]
    wire.sort(key=repr)
    return wire


def wire_to_rows(wire: Optional[Iterable[Iterable]]) -> set[tuple]:
    """The client-side inverse: JSON arrays back to a ``set[tuple]``."""
    return {tuple(row) for row in wire or ()}
