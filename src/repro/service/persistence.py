"""Durability for the query service: snapshot + append-only fact/rule log.

The serving layer's knowledge base lives in memory; without this module
a restart of ``repro serve`` forgets every ``add_facts``/``add_rules``
a client ever sent.  :class:`DurableStore` gives the service the
classic snapshot + write-ahead-log shape, sized for this repo's scale
(text-sized mutations, thousands-not-billions of records):

* **The log** (``facts.log``) is append-only NDJSON: one JSON object
  per committed mutation, carrying a strictly increasing ``seq`` and
  the mutation payload exactly as the session received it (the raw
  program text for text writes, a structured fact encoding otherwise).
  Appends flush to the OS on every record and ``fsync`` on a
  configurable cadence (``fsync_interval=0`` — the default — syncs
  every record; a positive interval group-commits, trading a bounded
  window of recent writes for throughput).

* **Snapshots** (``snapshot.json``) are compacted images of the whole
  base (rules as program text, facts in a JSON-native encoding),
  written atomically (temp file + ``fsync`` + ``rename``) every
  ``snapshot_every`` log records, after which the log is truncated.
  A crash between the snapshot rename and the log truncate merely
  leaves log records the snapshot already covers; replay skips any
  record whose ``seq`` the snapshot has absorbed.

* **Recovery** (:meth:`DurableStore.restore`) loads the snapshot, then
  replays the log in order.  A *torn tail* — the final record cut mid
  write by a crash or power loss — is expected, detected (unparseable
  or unterminated last line), dropped, and the log truncated back to
  the last durable record; the lost mutation was never acknowledged,
  because the service appends *before* answering the client.  A bad
  record anywhere **other** than the tail means real corruption and
  raises :class:`LogCorruptionError` rather than silently serving a
  hole in the knowledge base.

Values richer than JSON natives (str/int/float/bool/None) are
stringified on the way into a snapshot — the same convention as the
wire protocol's ``rows_to_wire`` — and rule text must round-trip
through the parser, which holds for every program this repo generates.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..core.atoms import Atom
from ..core.parser import parse_program
from ..core.program import Program
from ..core.rules import Rule
from ..core.terms import Constant
from ..session import Session

__all__ = [
    "LogCorruptionError",
    "LogLockedError",
    "ReplayReport",
    "DurableStore",
    "fact_to_wire",
    "fact_from_wire",
]

SNAPSHOT_NAME = "snapshot.json"
LOG_NAME = "facts.log"
LOCK_NAME = "lock.pid"
SNAPSHOT_FORMAT = 1

_JSON_NATIVE = (str, int, float, bool, type(None))

#: Data directories whose append lock is held by a store in *this*
#: process.  The pidfile alone cannot distinguish two stores in one
#: process (same pid), so in-process exclusion goes through here.
_HELD_LOCKS: set = set()
_HELD_LOCKS_GUARD = threading.Lock()


class LogCorruptionError(RuntimeError):
    """The log is damaged somewhere replay cannot safely skip."""


class LogLockedError(RuntimeError):
    """Another live server already owns this data directory's fact log.

    Two writers interleaving appends into one log would corrupt it in a
    way replay cannot repair (their records would shuffle into each
    other's sequence space).  The exclusive pidfile makes the second
    writer fail *loudly* instead; pass ``read_only=True`` to follow the
    log without writing (what replication replicas do).
    """


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a lockfile's recorded owner."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, different user
        return True
    except OSError:  # pragma: no cover - platform-dependent
        return True
    return True


def fact_to_wire(fact: Atom) -> list:
    """One ground atom as ``[predicate, [values...]]`` (JSON-native values)."""
    return [
        fact.predicate,
        [v if isinstance(v, _JSON_NATIVE) else str(v) for v in fact.ground_tuple()],
    ]


def fact_from_wire(entry: Iterable) -> Atom:
    """The inverse of :func:`fact_to_wire`."""
    predicate, values = entry
    return Atom(str(predicate), tuple(Constant(v) for v in values))


@dataclass(frozen=True)
class ReplayReport:
    """What one :meth:`DurableStore.restore` actually did."""

    snapshot_loaded: bool  # a snapshot file existed and was applied
    records_replayed: int  # log records applied on top of the snapshot
    records_skipped: int  # log records the snapshot had already absorbed
    torn_tail_dropped: int  # unterminated/unparseable final records removed
    bootstrapped: bool  # no prior state: the seed program became snapshot 0


class DurableStore:
    """Snapshot + append-only mutation log under one data directory.

    One store owns one directory; one directory serves one knowledge
    base.  The expected call pattern (what ``repro serve --data-dir``
    and :class:`~repro.service.shared_session.SharedSession` do)::

        store = DurableStore(data_dir)
        session, report = store.restore(seed_program_text)
        ...
        session.add_facts(text)   # commit in memory first
        store.record("add_facts", text)  # then make it durable

    ``record`` must be called *after* the in-memory commit succeeded
    (a rejected mutation must not be logged) and *before* the client is
    acknowledged (so nothing acknowledged is ever lost to a torn tail).
    The serving layer calls it under its write lock, which makes log
    order identical to commit order.
    """

    def __init__(
        self,
        data_dir: Union[str, os.PathLike],
        *,
        fsync_interval: float = 0.0,
        snapshot_every: int = 1000,
        read_only: bool = False,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        if fsync_interval < 0:
            raise ValueError(f"fsync_interval must be >= 0, got {fsync_interval}")
        self.data_dir = os.fspath(data_dir)
        self.fsync_interval = fsync_interval
        self.snapshot_every = snapshot_every
        #: Read-only followers (replication replicas) restore from the
        #: directory but never lock it, never append, never compact, and
        #: never truncate a torn tail on disk — the single *writer* owns
        #: every mutation of the files.
        self.read_only = read_only
        os.makedirs(self.data_dir, exist_ok=True)
        self.snapshot_path = os.path.join(self.data_dir, SNAPSHOT_NAME)
        self.log_path = os.path.join(self.data_dir, LOG_NAME)
        self.lock_path = os.path.join(self.data_dir, LOCK_NAME)
        self._lock_key = os.path.realpath(self.data_dir)
        self._lock_held = False
        self._log_file = None  # opened for append on first record
        self._seq = 0  # last durable sequence number
        self._records_since_snapshot = 0
        self._last_fsync = 0.0
        # Replay/durability accounting, surfaced through serving stats.
        self.appends = 0
        self.fsyncs = 0
        self.snapshots_written = 0
        self.last_report: Optional[ReplayReport] = None

    # ------------------------------------------------------------------
    # The single-writer guard
    # ------------------------------------------------------------------
    def acquire_lock(self) -> None:
        """Take the directory's exclusive append lock (idempotent).

        Called implicitly by the first :meth:`record`/:meth:`compact`;
        servers call it eagerly at boot so a second server over the same
        ``--data-dir`` fails immediately with a clear message instead of
        at its first accepted write.  The lock is an ``O_EXCL`` pidfile:
        a leftover file naming a *dead* pid (hard-killed server) is
        stolen; a live pid — or another store in this same process —
        raises :class:`LogLockedError`.
        """
        if self._lock_held:
            return
        if self.read_only:
            raise LogLockedError(
                f"{self.data_dir}: read-only store cannot take the append lock"
            )
        with _HELD_LOCKS_GUARD:
            if self._lock_key in _HELD_LOCKS:
                raise LogLockedError(
                    f"{self.data_dir} is already locked by another store in "
                    "this process; one data directory serves one writer"
                )
            for _ in range(2):
                try:
                    fd = os.open(
                        self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                    )
                except FileExistsError:
                    owner = self._read_lock_owner()
                    if owner is not None and owner != os.getpid() and _pid_alive(owner):
                        raise LogLockedError(
                            f"{self.data_dir} is locked by live pid {owner} "
                            f"({self.lock_path}); two servers must not "
                            "interleave appends into one fact log"
                        ) from None
                    # Dead owner (or unreadable/own-pid leftover from a
                    # previous life): the lock is stale — steal it.
                    try:
                        os.unlink(self.lock_path)
                    except FileNotFoundError:  # pragma: no cover - race
                        pass
                    continue
                with os.fdopen(fd, "w") as handle:
                    handle.write(f"{os.getpid()}\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                _HELD_LOCKS.add(self._lock_key)
                self._lock_held = True
                return
            raise LogLockedError(  # pragma: no cover - repeated create race
                f"{self.data_dir}: could not create {self.lock_path}"
            )

    def _read_lock_owner(self) -> Optional[int]:
        try:
            with open(self.lock_path, encoding="utf-8") as handle:
                return int(handle.read().strip() or "0")
        except (OSError, ValueError):
            return None

    def release_lock(self) -> None:
        """Give the append lock back (part of :meth:`close`)."""
        if not self._lock_held:
            return
        with _HELD_LOCKS_GUARD:
            _HELD_LOCKS.discard(self._lock_key)
            self._lock_held = False
            try:
                os.unlink(self.lock_path)
            except FileNotFoundError:  # pragma: no cover - stolen/cleaned
                pass

    @property
    def locked(self) -> bool:
        return self._lock_held

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------
    def has_state(self) -> bool:
        """True iff the directory holds a previous life of this base."""
        return os.path.exists(self.snapshot_path) or os.path.exists(self.log_path)

    def restore(
        self, source: Union[str, Program, None] = None, **session_options
    ) -> tuple[Session, ReplayReport]:
        """Build the session this directory describes; write-ready afterwards.

        With no prior state, ``source`` (program text or a parsed
        :class:`Program`) seeds the base and becomes snapshot 0 — the
        seed is durable before the service answers its first request.
        With prior state, ``source`` is **ignored** for content (the
        directory is the truth; the seed was absorbed at bootstrap) and
        the session is rebuilt as snapshot + log replay.
        """
        if not self.has_state():
            if source is None:
                raise ValueError(
                    f"{self.data_dir} holds no state and no seed program was given"
                )
            if self.read_only:
                raise ValueError(
                    f"{self.data_dir} holds no state to follow; a read-only "
                    "store cannot bootstrap (the writer does that)"
                )
            session = Session(source, **session_options)
            self._write_snapshot(session, seq=0)
            report = ReplayReport(
                snapshot_loaded=False,
                records_replayed=0,
                records_skipped=0,
                torn_tail_dropped=0,
                bootstrapped=True,
            )
            self.last_report = report
            return session, report

        snapshot = self._read_snapshot()
        if snapshot is not None:
            rules_text = snapshot["rules"]
            rules = (
                parse_program(rules_text, validate=False).rules if rules_text else ()
            )
            facts = tuple(fact_from_wire(e) for e in snapshot["facts"])
            session = Session(Program(tuple(rules), facts), **session_options)
            session._db_version = int(snapshot.get("db_version", 0))
            base_seq = int(snapshot["seq"])
        else:
            # A log with no snapshot: the directory was seeded by hand
            # or the snapshot was deleted; replay onto an empty base.
            session = Session(source if source is not None else "", **session_options)
            base_seq = 0

        records, torn = self._read_log()
        replayed = skipped = 0
        expected = base_seq
        for record in records:
            seq = int(record["seq"])
            if seq <= base_seq:
                skipped += 1  # absorbed by the snapshot (crash mid-compaction)
                continue
            expected += 1
            if seq != expected:
                raise LogCorruptionError(
                    f"{self.log_path}: sequence gap — expected record "
                    f"{expected}, found {seq}"
                )
            self._apply(session, record)
            replayed += 1
        self._seq = max(base_seq, expected)
        self._records_since_snapshot = replayed
        report = ReplayReport(
            snapshot_loaded=snapshot is not None,
            records_replayed=replayed,
            records_skipped=skipped,
            torn_tail_dropped=torn,
            bootstrapped=False,
        )
        self.last_report = report
        # Replaying may have left the log longer than the compaction
        # threshold (e.g. a crash loop); compact now so boot cost stays
        # bounded over any number of restarts.  Followers never compact:
        # truncating the log out from under the live writer would lose
        # its in-flight appends.
        if not self.read_only and self._records_since_snapshot >= self.snapshot_every:
            self.compact(session)
        return session, report

    @staticmethod
    def _apply(session: Session, record: dict) -> None:
        op = record.get("op")
        if op == "add_facts":
            payload = record["facts"]
            if isinstance(payload, str):
                session.add_facts(payload)
            else:
                session.add_facts(fact_from_wire(e) for e in payload)
        elif op == "add_rules":
            session.add_rules(record["rules"])
        else:
            raise LogCorruptionError(
                f"log record {record.get('seq')} has unknown op {op!r}"
            )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def record(
        self, op: str, payload: Union[str, Iterable[Atom], Iterable[Rule]]
    ) -> int:
        """Append one committed mutation; returns its sequence number.

        Text payloads are logged verbatim (they re-parse identically at
        replay); ``add_facts`` atom iterables are logged structurally;
        ``add_rules`` rule iterables are logged as program text.
        """
        if op == "add_facts":
            body = (
                payload
                if isinstance(payload, str)
                else [fact_to_wire(f) for f in payload]
            )
            field = "facts"
        elif op == "add_rules":
            body = (
                payload
                if isinstance(payload, str)
                else "\n".join(str(r) for r in payload)
            )
            field = "rules"
        else:
            raise ValueError(f"unloggable op {op!r}")
        if self.read_only:
            raise LogLockedError(
                f"{self.data_dir}: read-only store cannot append to the log"
            )
        self.acquire_lock()
        self._seq += 1
        line = (
            json.dumps({"seq": self._seq, "op": op, field: body}, sort_keys=True)
            + "\n"
        ).encode("utf-8")
        if self._log_file is None:
            self._log_file = open(self.log_path, "ab")
        self._log_file.write(line)
        self._log_file.flush()
        self.appends += 1
        self._records_since_snapshot += 1
        now = time.monotonic()
        if self.fsync_interval == 0.0 or now - self._last_fsync >= self.fsync_interval:
            os.fsync(self._log_file.fileno())
            self.fsyncs += 1
            self._last_fsync = now
        return self._seq

    def should_compact(self) -> bool:
        return self._records_since_snapshot >= self.snapshot_every

    def compact(self, session: Session) -> None:
        """Write a fresh snapshot of ``session`` and truncate the log.

        The snapshot lands atomically (temp + fsync + rename) *before*
        the log is touched, so a crash at any point leaves either the
        old snapshot with a full log or the new snapshot with a
        possibly-redundant log — both replay to the same base.
        """
        if self.read_only:
            raise LogLockedError(
                f"{self.data_dir}: read-only store cannot compact the log"
            )
        self.acquire_lock()
        self._write_snapshot(session, seq=self._seq)
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None
        with open(self.log_path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self._records_since_snapshot = 0

    def sync(self) -> None:
        """Force an fsync of any appended-but-unsynced records."""
        if self._log_file is not None:
            self._log_file.flush()
            os.fsync(self._log_file.fileno())
            self.fsyncs += 1
            self._last_fsync = time.monotonic()

    def close(self) -> None:
        if self._log_file is not None:
            self.sync()
            self._log_file.close()
            self._log_file = None
        self.release_lock()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def seq(self) -> int:
        """The last sequence number made durable."""
        return self._seq

    def stats(self) -> dict:
        """JSON-safe durability accounting for the ``stats`` op."""
        report = self.last_report
        return {
            "data_dir": self.data_dir,
            "read_only": self.read_only,
            "locked": self._lock_held,
            "seq": self._seq,
            "appends": self.appends,
            "fsyncs": self.fsyncs,
            "snapshots_written": self.snapshots_written,
            "records_since_snapshot": self._records_since_snapshot,
            "snapshot_every": self.snapshot_every,
            "fsync_interval": self.fsync_interval,
            "replay": None
            if report is None
            else {
                "snapshot_loaded": report.snapshot_loaded,
                "records_replayed": report.records_replayed,
                "records_skipped": report.records_skipped,
                "torn_tail_dropped": report.torn_tail_dropped,
                "bootstrapped": report.bootstrapped,
            },
        }

    # ------------------------------------------------------------------
    # File plumbing
    # ------------------------------------------------------------------
    def _write_snapshot(self, session: Session, seq: int) -> None:
        snapshot = {
            "format": SNAPSHOT_FORMAT,
            "seq": seq,
            "db_version": session.db_version,
            "rules": "\n".join(str(r) for r in session.rules),
            "facts": [fact_to_wire(f) for f in session.facts],
        }
        tmp_path = self.snapshot_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, separators=(",", ":"))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.snapshot_path)
        self._fsync_dir()
        self.snapshots_written += 1

    def _fsync_dir(self) -> None:
        # Make the rename itself durable; best-effort on platforms
        # where directories cannot be opened (e.g. Windows).
        try:
            fd = os.open(self.data_dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _read_snapshot(self) -> Optional[dict]:
        if not os.path.exists(self.snapshot_path):
            return None
        with open(self.snapshot_path, encoding="utf-8") as handle:
            try:
                snapshot = json.load(handle)
            except ValueError as exc:
                # Snapshots are written atomically, so a half-written
                # one never becomes visible; damage here is real.
                raise LogCorruptionError(
                    f"{self.snapshot_path}: unreadable snapshot: {exc}"
                ) from exc
        if snapshot.get("format") != SNAPSHOT_FORMAT:
            raise LogCorruptionError(
                f"{self.snapshot_path}: unsupported snapshot format "
                f"{snapshot.get('format')!r}"
            )
        return snapshot

    def _read_log(self) -> tuple[list[dict], int]:
        """Parse the log; returns (records, torn_tail_dropped).

        A damaged *final* record (no terminating newline, or JSON cut
        mid-object) is the designed-for crash signature: it is dropped
        and the file truncated back to the last durable record.  Damage
        anywhere else raises :class:`LogCorruptionError`.
        """
        if not os.path.exists(self.log_path):
            return [], 0
        with open(self.log_path, "rb") as handle:
            raw = handle.read()
        records: list[dict] = []
        offset = 0  # end of the last fully-durable record
        torn = 0
        lines = raw.split(b"\n")
        # split() yields a trailing "" exactly when raw ends with \n.
        terminated = lines and lines[-1] == b""
        if terminated:
            lines = lines[:-1]
        for index, line in enumerate(lines):
            final = index == len(lines) - 1
            if not line.strip():
                offset += len(line) + 1
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "seq" not in record:
                    raise ValueError("record is not an object with a seq")
            except ValueError as exc:
                if final:
                    torn = 1  # the torn tail a crash mid-append leaves
                    break
                raise LogCorruptionError(
                    f"{self.log_path}: damaged record at line {index + 1} "
                    f"is not the final record: {exc}"
                ) from exc
            if final and not terminated:
                # Parsed, but the newline commit marker is missing: the
                # record may still be incomplete (e.g. a truncated
                # string that happens to parse).  Treat as torn.
                torn = 1
                break
            records.append(record)
            offset += len(line) + 1
        if torn and not self.read_only:
            # Followers drop the tail in memory only; truncating the
            # writer's live log out from under it is not theirs to do.
            with open(self.log_path, "r+b") as handle:
                handle.truncate(offset)
        return records, torn
