"""A concurrency-safe facade over :class:`repro.session.Session`.

The PR 1 session is the serving engine the paper's Section 1 PIDB/EDB
split implies — one permanent knowledge base, many transient queries —
but it is single-threaded.  :class:`SharedSession` makes it safe (and
profitable) to share across threads:

* **Readers/writer discipline** — queries hold a shared read lock for
  the duration of evaluation, so any number run at once against the
  immutable-during-read ``Database``/``GraphCache``; ``add_facts`` and
  ``add_rules`` take the write lock, keeping the session's existing
  validate-then-commit flush atomic with respect to every in-flight
  query (a query observes the base either entirely before or entirely
  after a mutation, never mid-commit).

* **In-flight request coalescing** — the Theorem 2.1 cache key
  (:meth:`Session.cache_key_for`) is equal exactly when two queries
  must have equal answers (same IDB fingerprint, same variant
  signature, same SIP/coalesce options).  A query whose key matches an
  evaluation already in flight *joins* it: one leader evaluates, every
  follower waits on the leader's completion event and shares the same
  answer set.  Under a traffic spike of identical queries the work
  collapses from N evaluations to one — the in-flight analogue of the
  graph cache's across-time reuse.

Evaluation itself dispatches through :meth:`Session.run_query`, which
never touches the session's ``last_result`` slots, so overlapping
leaders cannot race; the session's ``runtime=`` option still selects
the simulator or the supervised pool/mp substrates per evaluation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Union

from ..cache import CacheStats
from ..core.atoms import Atom
from ..runtime.supervision import EvaluationTimeout
from ..session import Session
from .locks import ReadWriteLock
from .metrics import MetricsRegistry

__all__ = ["SharedSession", "QueryOutcome"]


@dataclass(frozen=True)
class QueryOutcome:
    """One caller's view of one (possibly shared) evaluation."""

    answers: frozenset
    coalesced: bool  # this caller joined an evaluation another one led
    shared: int  # total callers served by the evaluation (1 = exclusive)
    cache_hit: bool  # the rule/goal graph came from the LRU
    elapsed: float  # evaluation wall seconds (the leader's clock)
    attempts: int = 1
    degraded: bool = False
    failure_log: tuple[str, ...] = ()
    logical_messages: Optional[int] = None
    physical_messages: Optional[int] = None


class _InFlight:
    """One in-progress evaluation: completion event + shared outcome."""

    __slots__ = ("done", "joiners", "outcome", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.joiners = 0  # followers that joined before completion
        self.outcome: Optional[QueryOutcome] = None
        self.error: Optional[BaseException] = None


class SharedSession:
    """A :class:`Session` safe for concurrent readers and serialized writers.

    Accepts the same construction arguments as :class:`Session` (pass a
    prebuilt ``session=`` to wrap one instead), plus an optional
    ``metrics`` registry every operation reports into:

    ``queries_total``, ``coalesced_joins_total``,
    ``shared_evaluations_total``, ``graph_cache_hits_total`` /
    ``graph_cache_misses_total``, ``writes_total``, ``retries_total``,
    ``degraded_total``, ``logical_messages_total`` /
    ``physical_messages_total`` (counters) and ``evaluation_seconds``
    (histogram).  The same registry is shared with
    :class:`repro.service.server.QueryServer` when serving.
    """

    def __init__(
        self,
        source=None,
        *,
        session: Optional[Session] = None,
        metrics: Optional[MetricsRegistry] = None,
        **session_options,
    ) -> None:
        if (source is None) == (session is None):
            raise ValueError("pass exactly one of source= or session=")
        self._session = session if session is not None else Session(
            source, **session_options
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._rw = ReadWriteLock()
        self._inflight: dict[tuple, _InFlight] = {}
        self._inflight_lock = threading.Lock()
        m = self.metrics
        self._queries = m.counter(
            "queries_total", "query/ask evaluations requested"
        )
        self._joins = m.counter(
            "coalesced_joins_total", "requests served by joining an in-flight evaluation"
        )
        self._shared_evals = m.counter(
            "shared_evaluations_total", "evaluations that served more than one request"
        )
        self._cache_hits = m.counter("graph_cache_hits_total")
        self._cache_misses = m.counter("graph_cache_misses_total")
        self._writes = m.counter("writes_total", "add_facts/add_rules commits")
        self._retries = m.counter(
            "retries_total", "extra attempts spent by supervised runtimes"
        )
        self._degraded = m.counter(
            "degraded_total", "queries answered by the in-process fallback"
        )
        self._logical = m.counter("logical_messages_total")
        self._physical = m.counter("physical_messages_total")
        self._eval_seconds = m.histogram(
            "evaluation_seconds", help="evaluation wall time per leader run"
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def query(
        self, query: Union[str, Atom, Sequence[Atom]], timeout: Optional[float] = None
    ) -> set[tuple]:
        """Evaluate (possibly by joining an in-flight twin); the answer set."""
        return set(self.query_detailed(query, timeout=timeout).answers)

    def ask(
        self, query: Union[str, Atom, Sequence[Atom]], timeout: Optional[float] = None
    ) -> bool:
        """Boolean query: is the (possibly non-ground) query satisfiable?"""
        return bool(self.query_detailed(query, timeout=timeout).answers)

    def query_detailed(
        self, query: Union[str, Atom, Sequence[Atom]], timeout: Optional[float] = None
    ) -> QueryOutcome:
        """Evaluate with full serving accounting (:class:`QueryOutcome`).

        ``timeout`` bounds only a *follower's* wait on the leader it
        joined — the leader's own evaluation deadline belongs to the
        runtime (``Session(timeout=...)``) or to the server's admission
        layer, which enforces per-request deadlines around this call.
        """
        self._queries.inc()
        key = self._session.cache_key_for(query)
        with self._inflight_lock:
            entry = self._inflight.get(key)
            if entry is not None:
                entry.joiners += 1
                leader = False
            else:
                entry = _InFlight()
                self._inflight[key] = entry
                leader = True
        if leader:
            return self._lead(key, entry, query)
        return self._follow(entry, timeout)

    def _lead(self, key: tuple, entry: _InFlight, query) -> QueryOutcome:
        start = time.perf_counter()
        try:
            with self._rw.read_locked():
                result = self._session.run_query(query)
            elapsed = time.perf_counter() - start
            outcome = QueryOutcome(
                answers=frozenset(result.answers),
                coalesced=False,
                shared=1,
                cache_hit=bool(result.graph_cache_hit),
                elapsed=elapsed,
                attempts=getattr(result, "attempts", 1),
                degraded=bool(getattr(result, "degraded", False)),
                failure_log=tuple(getattr(result, "failure_log", ()) or ()),
                logical_messages=getattr(result, "total_messages", None),
                physical_messages=getattr(result, "physical_messages", None),
            )
        except BaseException as exc:
            with self._inflight_lock:
                self._inflight.pop(key, None)
            entry.error = exc
            entry.done.set()
            raise
        # Close the join window, then publish: joiners counted so far (and
        # only those) share this evaluation.
        with self._inflight_lock:
            self._inflight.pop(key, None)
            shared = 1 + entry.joiners
        outcome = replace(outcome, shared=shared)
        entry.outcome = outcome
        entry.done.set()
        self._account(outcome)
        if shared > 1:
            self._shared_evals.inc()
        return outcome

    def _follow(self, entry: _InFlight, timeout: Optional[float]) -> QueryOutcome:
        if not entry.done.wait(timeout):
            raise EvaluationTimeout(
                f"coalesced evaluation did not complete within {timeout}s"
            )
        self._joins.inc()
        if entry.error is not None:
            raise entry.error
        assert entry.outcome is not None
        return replace(entry.outcome, coalesced=True)

    def _account(self, outcome: QueryOutcome) -> None:
        self._eval_seconds.observe(outcome.elapsed)
        (self._cache_hits if outcome.cache_hit else self._cache_misses).inc()
        if outcome.attempts > 1:
            self._retries.inc(outcome.attempts - 1)
        if outcome.degraded:
            self._degraded.inc()
        if outcome.logical_messages is not None:
            self._logical.inc(outcome.logical_messages)
        if outcome.physical_messages is not None:
            self._physical.inc(outcome.physical_messages)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add_facts(self, facts) -> None:
        """Extend the EDB under the write lock (validate-then-commit)."""
        with self._rw.write_locked():
            self._session.add_facts(facts)
        self._writes.inc()

    def add_rules(self, source) -> None:
        """Extend the IDB under the write lock; flushes the graph cache."""
        with self._rw.write_locked():
            self._session.add_rules(source)
        self._writes.inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def session(self) -> Session:
        """The wrapped single-threaded session (locking is *your* job)."""
        return self._session

    @property
    def lock(self) -> ReadWriteLock:
        return self._rw

    def cache_stats(self) -> CacheStats:
        return self._session.cache_stats()

    def inflight_count(self) -> int:
        """How many distinct evaluations are running right now."""
        with self._inflight_lock:
            return len(self._inflight)

    def stats(self) -> dict:
        """A JSON-safe serving summary (cache + coalescing + lock)."""
        cache = self.cache_stats()
        return {
            "queries": self._queries.value,
            "coalesced_joins": self._joins.value,
            "shared_evaluations": self._shared_evals.value,
            "writes": self._writes.value,
            "inflight": self.inflight_count(),
            "graph_cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "invalidations": cache.invalidations,
                "size": cache.size,
                "capacity": cache.capacity,
            },
            "lock": {
                "reads_acquired": self._rw.reads_acquired,
                "writes_acquired": self._rw.writes_acquired,
                "max_concurrent_readers": self._rw.max_concurrent_readers,
            },
        }
