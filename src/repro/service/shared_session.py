"""A concurrency-safe facade over :class:`repro.session.Session`.

The PR 1 session is the serving engine the paper's Section 1 PIDB/EDB
split implies — one permanent knowledge base, many transient queries —
but it is single-threaded.  :class:`SharedSession` makes it safe (and
profitable) to share across threads:

* **Readers/writer discipline** — queries hold a shared read lock for
  the duration of evaluation, so any number run at once against the
  immutable-during-read ``Database``/``GraphCache``; ``add_facts`` and
  ``add_rules`` take the write lock, keeping the session's existing
  validate-then-commit flush atomic with respect to every in-flight
  query (a query observes the base either entirely before or entirely
  after a mutation, never mid-commit).

* **In-flight request coalescing** — the Theorem 2.1 cache key
  (:meth:`Session.cache_key_for`) is equal exactly when two queries
  must have equal answers (same IDB fingerprint, same variant
  signature, same SIP/coalesce options) *over the same base*, so the
  coalescing key is the cache key **plus the database version**: a
  query whose (key, version) matches an evaluation already in flight
  *joins* it — one leader evaluates, every follower waits on the
  leader's completion event and shares the same answer set.  Keying by
  version closes a linearizability hole the bare key had: a request
  arriving *after* a write commits can never join (and be served by)
  an evaluation that read the pre-write base.

* **Answer caching** — the same ``(cache_key, db_version)`` pair keys
  a bounded :class:`~repro.service.answer_cache.AnswerCache` of
  *completed* answer sets: a repeat query under an unchanged base is
  answered without evaluating at all.  Writes invalidate purely by
  version mismatch (plus an eager purge of the now-unreachable
  entries), so there is no flush to race with in-flight evaluations.

* **Durability** (optional) — pass a
  :class:`~repro.service.persistence.DurableStore` and every committed
  ``add_facts``/``add_rules`` is appended to its log *inside the write
  lock* (log order = commit order) before the caller is acknowledged;
  a restart replays snapshot + log and answers identically.

Evaluation itself dispatches through :meth:`Session.run_query`, which
never touches the session's ``last_result`` slots, so overlapping
leaders cannot race; the session's ``runtime=`` option still selects
the simulator or the supervised pool/mp substrates per evaluation.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Union

from ..cache import CacheStats
from ..core.atoms import Atom
from ..runtime.supervision import EvaluationTimeout
from ..session import MaterializedQuery, MaterializedQueryClosed, Session
from .answer_cache import AnswerCache
from .locks import ReadWriteLock
from .metrics import MetricsRegistry
from .persistence import DurableStore

__all__ = ["SharedSession", "QueryOutcome"]


@dataclass(frozen=True)
class QueryOutcome:
    """One caller's view of one (possibly shared) evaluation."""

    answers: frozenset
    coalesced: bool  # this caller joined an evaluation another one led
    shared: int  # total callers served by the evaluation (1 = exclusive)
    cache_hit: bool  # the rule/goal graph came from the LRU
    elapsed: float  # evaluation wall seconds (the leader's clock)
    attempts: int = 1
    degraded: bool = False
    failure_log: tuple[str, ...] = ()
    logical_messages: Optional[int] = None
    physical_messages: Optional[int] = None
    answer_cached: bool = False  # served straight from the answer cache
    materialized: bool = False  # served by a warm (retained-network) query
    db_version: Optional[int] = None  # base version the answers reflect
    #: The answer-cache entry backing this outcome (when one exists).
    #: Transport layers hang rendered forms of the answer set off its
    #: ``renders`` memo, so a hot query's rows are wire-encoded once,
    #: not once per repeat response.
    cache_entry: Optional[object] = field(default=None, repr=False, compare=False)


def _per_caller_error(error: BaseException) -> BaseException:
    """A fresh copy of the leader's failure for one follower to raise.

    Re-raising the *same* exception object from N follower threads at
    once mutates its ``__traceback__`` concurrently; each follower gets
    its own instance of the same type (chained to the original for the
    full story), falling back to the shared object for exception types
    that cannot be rebuilt from their args.
    """
    try:
        clone = type(error)(*error.args)
    except Exception:
        return error
    clone.__cause__ = error
    return clone


class _InFlight:
    """One in-progress evaluation: completion event + shared outcome."""

    __slots__ = ("done", "joiners", "outcome", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.joiners = 0  # followers that joined before completion
        self.outcome: Optional[QueryOutcome] = None
        self.error: Optional[BaseException] = None


class SharedSession:
    """A :class:`Session` safe for concurrent readers and serialized writers.

    Accepts the same construction arguments as :class:`Session` (pass a
    prebuilt ``session=`` to wrap one instead), plus an optional
    ``metrics`` registry every operation reports into:

    ``queries_total``, ``coalesced_joins_total``,
    ``shared_evaluations_total``, ``graph_cache_hits_total`` /
    ``graph_cache_misses_total``, ``answer_cache_hits_total`` /
    ``answer_cache_misses_total`` / ``answer_cache_invalidations_total``,
    ``writes_total``, ``retries_total``, ``degraded_total``,
    ``logical_messages_total`` / ``physical_messages_total``,
    ``log_appends_total`` / ``log_snapshots_total`` /
    ``replayed_records_total`` / ``replay_torn_tail_total`` (counters)
    and ``evaluation_seconds`` (histogram).  The same registry is
    shared with :class:`repro.service.server.QueryServer` when serving.

    ``answer_cache_size``/``answer_cache_bytes`` bound the answer cache
    (``answer_cache_size=0`` disables it; coalescing still applies).
    ``store`` attaches a :class:`DurableStore` the writes append to —
    wrap the session that store's :meth:`DurableStore.restore` built,
    or the log would repeat mutations the snapshot already holds.

    ``materialize=True`` (simulator runtime only; silently ignored for
    the multiprocess runtimes, which cannot retain a network) keeps a
    bounded LRU pool of up to ``materialize_pool`` warm
    :class:`~repro.session.MaterializedQuery` instances keyed by the
    Theorem 2.1 graph-cache key.  Repeat queries refresh the retained
    network semi-naively instead of re-deriving the fixpoint, and each
    committed ``add_facts`` delta-refreshes the warm entries and
    re-stores their answer sets under the new ``db_version`` — hot keys
    ride through writes without ever missing the answer cache.
    """

    def __init__(
        self,
        source=None,
        *,
        session: Optional[Session] = None,
        metrics: Optional[MetricsRegistry] = None,
        store: Optional[DurableStore] = None,
        answer_cache_size: int = 256,
        answer_cache_bytes: int = 64 * 1024 * 1024,
        materialize: bool = False,
        materialize_pool: int = 32,
        **session_options,
    ) -> None:
        if (source is None) == (session is None):
            raise ValueError("pass exactly one of source= or session=")
        if materialize_pool < 1:
            raise ValueError(
                f"materialize_pool must be >= 1, got {materialize_pool}"
            )
        self._session = session if session is not None else Session(
            source, **session_options
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._store = store
        self._answers = (
            AnswerCache(answer_cache_size, answer_cache_bytes)
            if answer_cache_size > 0
            else None
        )
        # Warm materializations: evaluated networks retained per Theorem
        # 2.1 key, refreshed semi-naively on writes.  Only the simulator
        # runtime can retain a network; other runtimes fall back to the
        # invalidate-and-recompute path transparently.
        self._materialize = materialize and self._session.runtime == "simulator"
        self._materialize_pool = materialize_pool
        self._mats: "OrderedDict[tuple, MaterializedQuery]" = OrderedDict()
        self._mats_lock = threading.Lock()
        self._rw = ReadWriteLock()
        self._inflight: dict[tuple, _InFlight] = {}
        self._inflight_lock = threading.Lock()
        m = self.metrics
        self._queries = m.counter(
            "queries_total", "query/ask evaluations requested"
        )
        self._joins = m.counter(
            "coalesced_joins_total", "requests served by joining an in-flight evaluation"
        )
        self._shared_evals = m.counter(
            "shared_evaluations_total", "evaluations that served more than one request"
        )
        self._cache_hits = m.counter("graph_cache_hits_total")
        self._cache_misses = m.counter("graph_cache_misses_total")
        self._answer_hits = m.counter(
            "answer_cache_hits_total", "queries answered without evaluation"
        )
        self._answer_misses = m.counter("answer_cache_misses_total")
        self._answer_invalidations = m.counter(
            "answer_cache_invalidations_total",
            "cached answer sets made unreachable by a committed write",
        )
        self._writes = m.counter("writes_total", "add_facts/add_rules commits")
        self._log_appends = m.counter(
            "log_appends_total", "mutations appended to the durable log"
        )
        self._log_snapshots = m.counter(
            "log_snapshots_total", "compacted snapshots written"
        )
        replayed = m.counter(
            "replayed_records_total", "log records replayed at the last boot"
        )
        torn = m.counter(
            "replay_torn_tail_total", "torn final log records dropped at boot"
        )
        if store is not None and store.last_report is not None:
            replayed.inc(store.last_report.records_replayed)
            torn.inc(store.last_report.torn_tail_dropped)
        self._retries = m.counter(
            "retries_total", "extra attempts spent by supervised runtimes"
        )
        self._degraded = m.counter(
            "degraded_total", "queries answered by the in-process fallback"
        )
        self._logical = m.counter("logical_messages_total")
        self._physical = m.counter("physical_messages_total")
        self._eval_seconds = m.histogram(
            "evaluation_seconds", help="evaluation wall time per leader run"
        )
        self._materializations = m.counter(
            "materializations_total", "warm networks built (initial fixpoints)"
        )
        self._delta_refreshes = m.counter(
            "delta_refreshes_total",
            "semi-naive delta waves propagated through warm networks",
        )
        self._answer_refreshes = m.counter(
            "answer_cache_refreshes_total",
            "cached answer sets delta-refreshed to the new version on a write",
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def query(
        self, query: Union[str, Atom, Sequence[Atom]], timeout: Optional[float] = None
    ) -> set[tuple]:
        """Evaluate (possibly by joining an in-flight twin); the answer set."""
        return set(self.query_detailed(query, timeout=timeout).answers)

    def ask(
        self, query: Union[str, Atom, Sequence[Atom]], timeout: Optional[float] = None
    ) -> bool:
        """Boolean query: is the (possibly non-ground) query satisfiable?"""
        return bool(self.query_detailed(query, timeout=timeout).answers)

    def query_detailed(
        self, query: Union[str, Atom, Sequence[Atom]], timeout: Optional[float] = None
    ) -> QueryOutcome:
        """Evaluate with full serving accounting (:class:`QueryOutcome`).

        ``timeout`` bounds only a *follower's* wait on the leader it
        joined — the leader's own evaluation deadline belongs to the
        runtime (``Session(timeout=...)``) or to the server's admission
        layer, which enforces per-request deadlines around this call.
        """
        self._queries.inc()
        # One parse per request: prepare() parses and computes the
        # Theorem 2.1 key once; the prepared form rides through the
        # cache lookup, coalescing, and the evaluation itself.
        prepared = self._session.prepare(query)
        key = self._session.cache_key_for(prepared)
        version = self._session.db_version
        if self._answers is not None:
            cached = self._answers.get(key, version)
            if cached is not None:
                self._answer_hits.inc()
                return QueryOutcome(
                    answers=cached.answers,
                    coalesced=False,
                    shared=1,
                    cache_hit=True,
                    elapsed=0.0,
                    answer_cached=True,
                    db_version=version,
                    cache_entry=cached,
                )
            self._answer_misses.inc()
        # Coalesce on (key, version): joining is only sound when the
        # in-flight evaluation reads the same base this request sees.
        ckey = (key, version)
        with self._inflight_lock:
            entry = self._inflight.get(ckey)
            if entry is not None:
                entry.joiners += 1
                leader = False
            else:
                entry = _InFlight()
                self._inflight[ckey] = entry
                leader = True
        if leader:
            return self._lead(key, ckey, entry, prepared)
        return self._follow(entry, timeout)

    def _lead(self, key: tuple, ckey: tuple, entry: _InFlight, prepared) -> QueryOutcome:
        start = time.perf_counter()
        try:
            with self._rw.read_locked():
                # Writers are excluded while we hold the read lock, so
                # this is the version the whole evaluation reads.  It can
                # exceed ckey's version if a write slipped in before the
                # lock; answers are then stored under what was truly read.
                version = self._session.db_version
                # Re-derive the key under the lock: an add_rules that
                # slipped in changed the IDB fingerprint prepared.key
                # was computed against.
                key = self._session.cache_key_for(prepared)
                if self._materialize:
                    result, materialized = self._query_materialized(prepared, key)
                else:
                    result = self._session.run_query(prepared)
                    materialized = False
            elapsed = time.perf_counter() - start
            outcome = QueryOutcome(
                answers=frozenset(result.answers),
                coalesced=False,
                shared=1,
                cache_hit=bool(result.graph_cache_hit),
                elapsed=elapsed,
                materialized=materialized,
                attempts=getattr(result, "attempts", 1),
                degraded=bool(getattr(result, "degraded", False)),
                failure_log=tuple(getattr(result, "failure_log", ()) or ()),
                logical_messages=getattr(result, "total_messages", None),
                physical_messages=getattr(result, "physical_messages", None),
                db_version=version,
            )
            if self._answers is not None:
                # Store before closing the join window so no identical
                # request falls in the gap between the two.
                stored = self._answers.put(key, version, outcome.answers, elapsed)
                if stored is not None:
                    outcome = replace(outcome, cache_entry=stored)
            with self._inflight_lock:
                self._inflight.pop(ckey, None)
                shared = 1 + entry.joiners
            outcome = replace(outcome, shared=shared)
            entry.outcome = outcome
        except BaseException as exc:
            # Publish the failure itself: followers must observe the
            # same typed error, never a stale or partial entry.
            entry.error = exc
            raise
        finally:
            # Whatever happened above, close the join window and wake
            # every follower; a leader that leaves without publishing
            # would hang them on the completion event forever.
            with self._inflight_lock:
                self._inflight.pop(ckey, None)
            entry.done.set()
        self._account(outcome)
        if shared > 1:
            self._shared_evals.inc()
        return outcome

    def _follow(self, entry: _InFlight, timeout: Optional[float]) -> QueryOutcome:
        if not entry.done.wait(timeout):
            raise EvaluationTimeout(
                f"coalesced evaluation did not complete within {timeout}s"
            )
        self._joins.inc()
        if entry.error is not None:
            raise _per_caller_error(entry.error)
        assert entry.outcome is not None
        return replace(entry.outcome, coalesced=True)

    def _account(self, outcome: QueryOutcome) -> None:
        self._eval_seconds.observe(outcome.elapsed)
        (self._cache_hits if outcome.cache_hit else self._cache_misses).inc()
        if outcome.attempts > 1:
            self._retries.inc(outcome.attempts - 1)
        if outcome.degraded:
            self._degraded.inc()
        if outcome.logical_messages is not None:
            self._logical.inc(outcome.logical_messages)
        if outcome.physical_messages is not None:
            self._physical.inc(outcome.physical_messages)

    # ------------------------------------------------------------------
    # Warm materializations
    # ------------------------------------------------------------------
    def _query_materialized(self, prepared, key: tuple):
        """Serve one leader evaluation from the warm pool (read lock held).

        A pool hit refreshes the retained network (a no-op when no
        writes are pending); a miss evaluates from scratch, retains the
        network, and LRU-evicts past the pool bound.  Coalescing on
        ``(key, version)`` means no two leaders share a key at once, and
        the read lock excludes writers, so each materialization sees a
        quiescent base; its own lock still makes refreshes safe against
        the write path's background refresh.
        """
        with self._mats_lock:
            mat = self._mats.get(key)
            if mat is not None and mat.closed:
                self._mats.pop(key, None)
                mat = None
            if mat is not None:
                self._mats.move_to_end(key)
        if mat is not None:
            try:
                before = mat.refreshes
                result = mat.refresh()
                if mat.refreshes > before:
                    self._delta_refreshes.inc(mat.refreshes - before)
                return result, True
            except MaterializedQueryClosed:
                with self._mats_lock:
                    if self._mats.get(key) is mat:
                        self._mats.pop(key, None)
        mat = self._session.materialize(prepared)
        self._materializations.inc()
        with self._mats_lock:
            existing = self._mats.get(key)
            if existing is not None and not existing.closed:
                # Lost an (unlikely) install race; keep the incumbent.
                mat.close()
                mat = existing
            else:
                self._mats[key] = mat
                while len(self._mats) > self._materialize_pool:
                    _, evicted = self._mats.popitem(last=False)
                    evicted.close()
        return mat.result, True

    def _refresh_warm(self) -> None:
        """Delta-refresh every warm materialization after a commit.

        Runs under the read lock (writers excluded, concurrent queries
        fine) *before* stale answer-cache entries are purged: each
        refreshed answer set is re-stored under the new ``db_version``,
        so hot keys stay answerable without evaluation across writes —
        the cache is maintained, not invalidated.  Closed
        materializations (``add_rules`` changed the IDB) just fall out
        of the pool; their keys take the ordinary invalidation path.
        """
        if not self._materialize:
            return
        with self._rw.read_locked():
            version = self._session.db_version
            with self._mats_lock:
                live = list(self._mats.items())
            for key, mat in live:
                try:
                    start = time.perf_counter()
                    before = mat.refreshes
                    result = mat.refresh()
                    elapsed = time.perf_counter() - start
                except MaterializedQueryClosed:
                    with self._mats_lock:
                        if self._mats.get(key) is mat:
                            self._mats.pop(key, None)
                    continue
                if mat.refreshes > before:
                    self._delta_refreshes.inc(mat.refreshes - before)
                # mat.version lags the commit only if another write
                # landed meanwhile — impossible under the read lock.
                if self._answers is not None and mat.version == version:
                    self._answers.put(
                        key, version, frozenset(result.answers), elapsed
                    )
                    self._answer_refreshes.inc()

    def _drop_closed_materializations(self) -> None:
        """Forget pool entries ``add_rules`` invalidated (networks closed)."""
        with self._mats_lock:
            for key in [k for k, m in self._mats.items() if m.closed]:
                self._mats.pop(key, None)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add_facts(self, facts) -> None:
        """Extend the EDB under the write lock (validate-then-commit).

        With a durable store attached, the committed mutation is logged
        (and fsynced per the store's policy) before this method — and
        therefore the server's acknowledgement — returns.
        """
        with self._rw.write_locked():
            before = self._session.db_version
            self._session.add_facts(facts)
            self._record_write("add_facts", facts, changed=self._session.db_version != before)
        self._writes.inc()
        # Maintain before invalidating: warm keys are re-stored under
        # the new version first, then the purge sweeps only what no
        # materialization kept alive.
        self._refresh_warm()
        self._reclaim_stale_answers()

    def add_rules(self, source) -> None:
        """Extend the IDB under the write lock; flushes the graph cache.

        New *rules* change the IDB fingerprint every warm network was
        built against, so the session closes all materializations; the
        pool drops them and repeat queries re-materialize on demand.  A
        facts-only ``add_rules`` keeps the networks and delta-refreshes
        like :meth:`add_facts`.
        """
        with self._rw.write_locked():
            before = self._session.db_version
            self._session.add_rules(source)
            self._record_write("add_rules", source, changed=self._session.db_version != before)
        self._writes.inc()
        self._drop_closed_materializations()
        self._refresh_warm()
        self._reclaim_stale_answers()

    def _record_write(self, op: str, payload, changed: bool) -> None:
        """Append one committed mutation to the durable log (write lock held)."""
        if self._store is None or not changed:
            return  # a no-op commit has nothing worth replaying
        self._store.record(op, payload)
        self._log_appends.inc()
        if self._store.should_compact():
            self._store.compact(self._session)
            self._log_snapshots.inc()

    def _reclaim_stale_answers(self) -> None:
        """Free answer-cache entries the version bump made unreachable.

        Purely an eager memory reclaim — correctness needs nothing
        here, because lookups already key on the current version.
        """
        if self._answers is not None:
            purged = self._answers.purge_below(self._session.db_version)
            if purged:
                self._answer_invalidations.inc(purged)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def session(self) -> Session:
        """The wrapped single-threaded session (locking is *your* job)."""
        return self._session

    @property
    def lock(self) -> ReadWriteLock:
        return self._rw

    @property
    def answer_cache(self) -> Optional[AnswerCache]:
        """The answer cache (None when disabled)."""
        return self._answers

    @property
    def store(self) -> Optional[DurableStore]:
        """The attached durability layer (None when serving in-memory)."""
        return self._store

    @property
    def db_version(self) -> int:
        return self._session.db_version

    def cache_stats(self) -> CacheStats:
        return self._session.cache_stats()

    def inflight_count(self) -> int:
        """How many distinct evaluations are running right now."""
        with self._inflight_lock:
            return len(self._inflight)

    def stats(self) -> dict:
        """A JSON-safe serving summary (cache + coalescing + lock)."""
        cache = self.cache_stats()
        return {
            "queries": self._queries.value,
            "coalesced_joins": self._joins.value,
            "shared_evaluations": self._shared_evals.value,
            "writes": self._writes.value,
            "inflight": self.inflight_count(),
            "db_version": self._session.db_version,
            "answer_cache": (
                self._answers.stats().as_dict() if self._answers is not None else None
            ),
            "materialized": (
                {
                    "enabled": True,
                    "pool_size": len(self._mats),
                    "pool_capacity": self._materialize_pool,
                    "materializations": self._materializations.value,
                    "delta_refreshes": self._delta_refreshes.value,
                    "answer_refreshes": self._answer_refreshes.value,
                }
                if self._materialize
                else {"enabled": False}
            ),
            "persistence": (
                self._store.stats() if self._store is not None else None
            ),
            # Cluster runtime only: the manager's transport snapshot
            # (per-worker wire bytes, batches, reconnects, heartbeat RTT).
            # None under every other runtime — and before the first
            # cluster query, since the client connects lazily.
            "cluster": (
                self._session.cluster_stats()
                if self._session.runtime == "cluster"
                else None
            ),
            "graph_cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "invalidations": cache.invalidations,
                "size": cache.size,
                "capacity": cache.capacity,
            },
            "lock": {
                "reads_acquired": self._rw.reads_acquired,
                "writes_acquired": self._rw.writes_acquired,
                "max_concurrent_readers": self._rw.max_concurrent_readers,
            },
        }
