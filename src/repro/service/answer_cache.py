"""A versioned answer cache: completed answer sets served without evaluation.

The graph cache (PR 1) reuses the *structure* of a query across time;
in-flight coalescing (PR 5) shares one evaluation across concurrent
twins.  Both still evaluate.  This module closes the remaining gap: a
*completed* answer set is kept and served directly, so a repeat query
under an unchanged knowledge base costs a dictionary lookup instead of
a fixpoint.

Soundness is the same two-part argument the serving layer already
leans on:

* **Theorem 2.1** — the graph-cache key (IDB fingerprint + query
  variant signature + SIP/coalesce options) is equal exactly when two
  queries must have equal answers *over the same EDB/IDB*;
* **the database version** — :attr:`repro.session.Session.db_version`
  is bumped by every committed mutation, so two requests seeing the
  same version see the same EDB/IDB.

Entries are therefore keyed by ``(graph_cache_key, db_version)``.  A
write never touches the cache: it bumps the version, every existing
entry's key stops matching, and the stale entries age out of the LRU
(or are reclaimed eagerly via :meth:`AnswerCache.purge_below`, which is
what :class:`~repro.service.shared_session.SharedSession` does after
each commit).  There is no flush to race with in-flight evaluations —
an evaluation that started before a write commits is stored under the
version it actually read, where no post-write lookup will find it.

The cache is bounded twice: by entry count (LRU) and by an approximate
byte budget, since answer sets vary from empty to millions of rows.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

__all__ = ["AnswerCacheStats", "CachedAnswer", "AnswerCache", "estimate_answer_bytes"]


def estimate_answer_bytes(answers: frozenset) -> int:
    """A cheap upper-ish estimate of one answer set's memory footprint.

    Sums ``sys.getsizeof`` over the container, each row tuple, and each
    value.  Shared/interned values make this an overestimate, which is
    the safe direction for a budget.
    """
    total = sys.getsizeof(answers)
    for row in answers:
        total += sys.getsizeof(row)
        for value in row:
            total += sys.getsizeof(value)
    return total


def _estimate_render_bytes(value) -> int:
    """Footprint estimate for one attached render (list/bytes/str-ish)."""
    total = sys.getsizeof(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            total += sys.getsizeof(item)
    return total


@dataclass(frozen=True)
class CachedAnswer:
    """One stored answer set plus the accounting needed to serve it."""

    answers: frozenset
    version: int  # db_version the evaluation read
    nbytes: int  # estimate_answer_bytes at store time
    elapsed: float  # wall seconds the original evaluation cost (saved per hit)
    #: Lazily attached derived forms of ``answers`` (e.g. the server's
    #: wire-encoded row list), computed by whoever serves the entry and
    #: reused on later hits.  Purely derived data: the entry — and with
    #: it this memo — dies with its version, so it can never go stale.
    #: Mutate only through :meth:`render` — direct check-then-set from
    #: concurrent server threads is the race this method exists to fix.
    renders: dict = field(default_factory=dict, compare=False, repr=False)
    #: Serializes render computation/attachment per entry.
    _render_lock: threading.Lock = field(
        default_factory=threading.Lock, compare=False, repr=False
    )
    #: Set by the owning :class:`AnswerCache` at store time so attached
    #: renders are charged against its byte budget; None for entries
    #: that were never stored (oversized, cache disabled).
    _charge: Optional[Callable[[int], None]] = field(
        default=None, compare=False, repr=False
    )

    def render(self, kind: Hashable, compute: Callable[[frozenset], object]):
        """``compute(answers)``, memoized race-free under ``kind``.

        Exactly one thread computes each kind; concurrent callers block
        briefly and reuse its value, so a hot entry is wire-encoded once
        rather than once per racing response thread.  The render's
        estimated footprint is charged to the owning cache's byte budget
        (entries hold renders comparable in size to the answers
        themselves — uncounted, the cache could hold ~2x ``max_bytes``).
        """
        value = self.renders.get(kind)
        if value is not None:
            return value
        with self._render_lock:
            value = self.renders.get(kind)
            if value is not None:
                return value
            value = compute(self.answers)
            self.renders[kind] = value
        if self._charge is not None:
            self._charge(_estimate_render_bytes(value))
        return value


@dataclass(frozen=True)
class AnswerCacheStats:
    """An immutable snapshot of one answer cache's counters.

    ``evictions`` counts entries dropped by the count/byte bounds;
    ``invalidations`` counts entries reclaimed because a write made
    their version unreachable (:meth:`AnswerCache.purge_below`).
    ``render_bytes`` is the portion of ``bytes`` held by renders
    attached to resident entries (wire encodings etc.); it is already
    included in ``bytes``, not in addition to it.
    """

    hits: int
    misses: int
    stores: int
    evictions: int
    invalidations: int
    entries: int
    bytes: int
    render_bytes: int
    capacity: int
    max_bytes: int
    seconds_saved: float

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-safe view for the ``stats`` op."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "bytes": self.bytes,
            "render_bytes": self.render_bytes,
            "capacity": self.capacity,
            "max_bytes": self.max_bytes,
            "seconds_saved": round(self.seconds_saved, 6),
        }


class AnswerCache:
    """A bounded LRU of completed answer sets keyed by (graph key, version).

    ``capacity`` bounds the entry count, ``max_bytes`` the summed
    :func:`estimate_answer_bytes` of stored answer sets; exceeding
    either evicts least-recently-used entries.  ``capacity=0`` disables
    the cache (every lookup misses, nothing is stored) so the disabled
    path exercises the same code.

    Thread-safe: one internal lock covers every operation, matching the
    :class:`~repro.cache.GraphCache` discipline.  A single answer set
    larger than ``max_bytes`` is simply not stored — caching it would
    evict everything else for one entry that may never repeat.
    """

    def __init__(self, capacity: int = 256, max_bytes: int = 64 * 1024 * 1024) -> None:
        if capacity < 0:
            raise ValueError(f"answer cache capacity must be >= 0, got {capacity}")
        if max_bytes < 0:
            raise ValueError(f"answer cache byte budget must be >= 0, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Hashable, CachedAnswer]" = OrderedDict()
        self._lock = threading.Lock()
        self._bytes = 0
        # Render bytes per resident entry (charged lazily as transports
        # attach wire encodings); folded into _bytes, split out in stats.
        self._render_nbytes: dict[Hashable, int] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0
        self.seconds_saved = 0.0

    # ------------------------------------------------------------------
    def get(self, key: Hashable, version: int) -> Optional[CachedAnswer]:
        """The answer set stored for ``key`` at exactly ``version``, or None."""
        with self._lock:
            entry = self._entries.get((key, version))
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end((key, version))
            self.hits += 1
            self.seconds_saved += entry.elapsed
            return entry

    def put(
        self, key: Hashable, version: int, answers: frozenset, elapsed: float = 0.0
    ) -> Optional[CachedAnswer]:
        """Store one completed answer set; returns the entry (None if not stored)."""
        if self.capacity == 0 or self.max_bytes == 0:
            return None
        nbytes = estimate_answer_bytes(answers)
        if nbytes > self.max_bytes:
            return None  # one oversized set must not flush the whole cache
        entry = CachedAnswer(
            answers=answers, version=version, nbytes=nbytes, elapsed=elapsed
        )
        full_key = (key, version)
        object.__setattr__(
            entry, "_charge", lambda n: self._charge_render(full_key, entry, n)
        )
        with self._lock:
            previous = self._entries.pop(full_key, None)
            if previous is not None:
                self._bytes -= previous.nbytes + self._render_nbytes.pop(full_key, 0)
            self._entries[full_key] = entry
            self._bytes += nbytes
            self.stores += 1
            self._evict_over_budget()
        return entry

    def _charge_render(self, full_key: Hashable, entry: "CachedAnswer", n: int) -> None:
        """Count one attached render against the byte budget (entry callback).

        A render attached after its entry was evicted/purged charges
        nothing — the cache no longer holds it, only the caller does.
        """
        with self._lock:
            if self._entries.get(full_key) is not entry:
                return
            self._render_nbytes[full_key] = self._render_nbytes.get(full_key, 0) + n
            self._bytes += n
            self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        """LRU-evict until within both bounds (lock held by caller)."""
        while self._entries and (
            len(self._entries) > self.capacity or self._bytes > self.max_bytes
        ):
            evicted_key, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes + self._render_nbytes.pop(evicted_key, 0)
            self.evictions += 1

    def purge_below(self, version: int) -> int:
        """Reclaim entries whose version a lookup can no longer present.

        Lookups always use the *current* ``db_version`` and the counter
        is strictly monotone, so after a commit to ``version`` every
        entry below it is unreachable garbage.  Called by the serving
        layer after each write; returns the number reclaimed (counted
        as ``invalidations``).
        """
        with self._lock:
            stale = [fk for fk in self._entries if fk[1] < version]
            for full_key in stale:
                self._bytes -= (
                    self._entries.pop(full_key).nbytes
                    + self._render_nbytes.pop(full_key, 0)
                )
                self.invalidations += 1
            return len(stale)

    def clear(self) -> int:
        """Drop everything (counted as invalidations); returns the count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._render_nbytes.clear()
            self._bytes = 0
            self.invalidations += dropped
            return dropped

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, full_key: Hashable) -> bool:
        with self._lock:
            return full_key in self._entries

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> AnswerCacheStats:
        """A point-in-time :class:`AnswerCacheStats` snapshot."""
        with self._lock:
            return AnswerCacheStats(
                hits=self.hits,
                misses=self.misses,
                stores=self.stores,
                evictions=self.evictions,
                invalidations=self.invalidations,
                entries=len(self._entries),
                bytes=self._bytes,
                render_bytes=sum(self._render_nbytes.values()),
                capacity=self.capacity,
                max_bytes=self.max_bytes,
                seconds_saved=self.seconds_saved,
            )
