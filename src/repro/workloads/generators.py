"""Deterministic EDB generators for the experiments.

All generators take an explicit ``seed`` where randomness is involved and
return plain fact dictionaries ``{predicate: [rows]}`` suitable for
:meth:`repro.relational.database.Database.from_tuples` or for grafting onto a
:class:`~repro.core.program.Program` via :func:`facts_from_tables`.

The shapes cover the regimes the paper's arguments distinguish:

* *chains/cycles* — long derivation paths, stressing the termination
  protocol's repeated end-request waves;
* *trees* — ancestor/same-generation style genealogies;
* *random digraphs* — Erdős–Rényi style, for crossover sweeps between
  sideways-restricted and full bottom-up evaluation;
* *grids and layered DAGs* — many short interleaved derivations.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping, Sequence

from ..core.atoms import Atom
from ..core.terms import Constant

__all__ = [
    "chain_edges",
    "cycle_edges",
    "tree_parent_edges",
    "random_digraph_edges",
    "layered_dag_edges",
    "grid_edges",
    "pair_table",
    "facts_from_tables",
    "p1_tables",
]


def chain_edges(n: int, stride: int = 1) -> list[tuple[int, int]]:
    """Edges of a simple path ``0 -> 1 -> ... -> n-1`` (optionally strided)."""
    return [(i, i + stride) for i in range(0, n - stride, stride)]


def cycle_edges(n: int) -> list[tuple[int, int]]:
    """Edges of a directed cycle on ``n`` vertices."""
    return [(i, (i + 1) % n) for i in range(n)]


def tree_parent_edges(depth: int, branching: int = 2) -> list[tuple[int, int]]:
    """``par(child, parent)`` pairs of a complete tree (root = 0).

    Vertices are numbered level by level; suitable for the ancestor and
    same-generation programs (note the child-first column order).
    """
    edges: list[tuple[int, int]] = []
    next_id = 1
    frontier = [0]
    for _ in range(depth):
        new_frontier: list[int] = []
        for parent in frontier:
            for _ in range(branching):
                child = next_id
                next_id += 1
                edges.append((child, parent))
                new_frontier.append(child)
        frontier = new_frontier
    return edges


def random_digraph_edges(
    n: int, edge_count: int, seed: int, self_loops: bool = False
) -> list[tuple[int, int]]:
    """``edge_count`` distinct edges sampled uniformly over ``n`` vertices."""
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    limit = n * (n - 1) + (n if self_loops else 0)
    edge_count = min(edge_count, limit)
    while len(edges) < edge_count:
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a == b and not self_loops:
            continue
        edges.add((a, b))
    return sorted(edges)


def layered_dag_edges(
    layers: int, width: int, fanout: int, seed: int
) -> list[tuple[int, int]]:
    """A layered DAG: each vertex connects to ``fanout`` in the next layer.

    Vertex ``layer * width + slot`` identifies each node.
    """
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    for layer in range(layers - 1):
        for slot in range(width):
            source = layer * width + slot
            for _ in range(fanout):
                target = (layer + 1) * width + rng.randrange(width)
                edges.add((source, target))
    return sorted(edges)


def grid_edges(rows: int, cols: int) -> list[tuple[int, int]]:
    """Right/down edges of a rows x cols grid (vertex = r*cols + c)."""
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return edges


def cylinder_edges(rings: int, ring_size: int) -> list[tuple[int, int]]:
    """A cylinder: stacked directed rings plus downward rungs.

    Each ring is a directed cycle of ``ring_size`` vertices; every vertex
    also points to the corresponding vertex of the next ring.  Combines the
    termination-stressing cycles of rings with the depth of a chain.
    Vertex = ``ring * ring_size + slot``.
    """
    edges: list[tuple[int, int]] = []
    for ring in range(rings):
        base = ring * ring_size
        for slot in range(ring_size):
            edges.append((base + slot, base + (slot + 1) % ring_size))
            if ring + 1 < rings:
                edges.append((base + slot, base + ring_size + slot))
    return edges


def pair_table(
    left_domain: int,
    right_domain: int,
    count: int,
    seed: int,
    left_offset: int = 0,
    right_offset: int = 0,
) -> list[tuple[int, int]]:
    """``count`` distinct random pairs over two integer domains."""
    rng = random.Random(seed)
    pairs: set[tuple[int, int]] = set()
    count = min(count, left_domain * right_domain)
    while len(pairs) < count:
        pairs.add(
            (left_offset + rng.randrange(left_domain), right_offset + rng.randrange(right_domain))
        )
    return sorted(pairs)


def bom_tables(depth: int, fanout: int, shared: int, seed: int) -> dict[str, list[tuple]]:
    """A bill-of-materials ``uses`` DAG: assemblies reuse shared subparts.

    Level-0 is the root assembly ``widget``; each part at level *l* uses
    ``fanout`` parts at level *l+1*, drawn from a pool so that subassemblies
    are shared (``shared`` pool entries per level) — the sharing is what
    makes naive part explosion rediscover subtrees and what duplicate
    deletion in the engine collapses.
    """
    rng = random.Random(seed)
    uses: set[tuple] = set()
    level_parts = ["widget"]
    for level in range(depth):
        pool = [f"p{level + 1}_{i}" for i in range(max(shared, fanout))]
        for part in level_parts:
            for choice in rng.sample(pool, min(fanout, len(pool))):
                uses.add((part, choice))
        level_parts = pool
    return {"uses": sorted(uses)}


def facts_from_tables(tables: Mapping[str, Iterable[Sequence[object]]]) -> list[Atom]:
    """Turn ``{predicate: rows}`` into ground atoms for a Program's EDB."""
    facts: list[Atom] = []
    for predicate in sorted(tables):
        for row in tables[predicate]:
            facts.append(Atom(predicate, tuple(Constant(v) for v in row)))
    return facts


def p1_tables(n: int, q_fraction: float, seed: int) -> dict[str, list[tuple]]:
    """An EDB for program P1: ``r`` a random digraph, ``q`` a sparser one.

    ``r`` gets roughly ``2n`` edges over ``n`` vertices named ``a``-prefixed
    so the query constant ``a`` (vertex ``a0``… alias) exists; vertex 0 is
    renamed to the constant ``a`` to serve as the query entry point.
    """
    rng = random.Random(seed)

    def name(v: int) -> object:
        return "a" if v == 0 else v

    r_edges = random_digraph_edges(n, 2 * n, seed)
    q_count = max(1, int(len(r_edges) * q_fraction))
    q_edges = random_digraph_edges(n, q_count, seed + 1)
    # Guarantee the query constant has at least one outgoing r edge.
    if not any(a == 0 for a, _ in r_edges):
        r_edges.append((0, rng.randrange(1, max(2, n))))
    return {
        "r": sorted({(name(a), name(b)) for a, b in r_edges}, key=repr),
        "q": sorted({(name(a), name(b)) for a, b in q_edges}, key=repr),
    }
