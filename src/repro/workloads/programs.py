"""Canonical programs from the paper, plus classic deductive-database suites.

* :func:`program_p1` — Example 2.1's program P1 (nonlinear transitive-style
  recursion through an intermediate ``q`` relation), the running example of
  the whole paper and the subject of Fig 1.
* :func:`rule_r1` / :func:`rule_r2` / :func:`rule_r3` — Example 4.1's rules
  used to illustrate the monotone flow property (Figs 3 and 4).
* Ancestor, nonlinear transitive closure, same-generation, and a
  left-recursive variant — the standard recursion shapes referenced in
  Sections 1.1 and 3 (linear vs. nonlinear recursion, left recursion
  termination).
"""

from __future__ import annotations

from ..core.adornment import AdornedAtom, DYNAMIC, FREE
from ..core.atoms import Atom
from ..core.parser import parse_program, parse_rule
from ..core.program import Program
from ..core.rules import Rule

__all__ = [
    "program_p1",
    "P1_TEXT",
    "rule_r1",
    "rule_r2",
    "rule_r3",
    "adorned_head_df",
    "ancestor_program",
    "nonlinear_tc_program",
    "left_recursive_tc_program",
    "same_generation_program",
    "mutual_recursion_program",
    "nonrecursive_join_program",
]

#: Example 2.1's program P1, verbatim (modulo arrow spelling).
P1_TEXT = """
goal(Z) <- p(a, Z).
p(X, Y) <- p(X, U), q(U, V), p(V, Y).
p(X, Y) <- r(X, Y).
"""


def program_p1(constant: object = "a") -> Program:
    """Example 2.1: EDB relations ``r`` and ``q``, IDB predicate ``p``.

    ``constant`` is the user-entered constant of the query ``p(a, Z)``.
    """
    text = P1_TEXT if constant == "a" else P1_TEXT.replace("p(a, Z)", f"p({constant}, Z)")
    return parse_program(text)


def rule_r1() -> Rule:
    """Example 4.1, rule R1: ``p(X,Z) <- a(X,Y), b(Y,U), c(U,Z)`` (monotone)."""
    return parse_rule("p(X, Z) <- a(X, Y), b(Y, U), c(U, Z).")


def rule_r2() -> Rule:
    """Example 4.1, rule R2 (monotone; hypergraph in Fig 3)::

        p(X,Z) <- a(X,Y,V), b(Y,U), c(V,T), d(T), e(U,Z).

    Information flows from X to both Y and V; extending to U (via b) or to T
    (via c) are independent and can run in parallel.
    """
    return parse_rule("p(X, Z) <- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).")


def rule_r3() -> Rule:
    """Example 4.1, rule R3 (not monotone; hypergraph in Fig 4)::

        p(X,Z) <- a(X,Y,V), b(Y,W,U), c(V,W,T), d(T), e(U,Z).

    The cycle involving Y, V, and W means evaluating b and c in parallel
    risks "computing two large relations that are nearly unjoinable due to
    mismatches on W".
    """
    return parse_rule("p(X, Z) <- a(X, Y, V), b(Y, W, U), c(V, W, T), d(T), e(U, Z).")


def adorned_head_df(rule: Rule) -> AdornedAtom:
    """Example 4.1's binding pattern: first head argument "d", second "f"."""
    if rule.head.arity != 2:
        raise ValueError("adorned_head_df expects a binary head")
    return AdornedAtom(rule.head, (DYNAMIC, FREE))


def ancestor_program(root: object = "ann") -> Program:
    """Linear-recursive ancestor over an EDB ``par`` (parent) relation."""
    return parse_program(
        f"""
        goal(Z) <- anc({root}, Z).
        anc(X, Y) <- par(X, Y).
        anc(X, Y) <- par(X, U), anc(U, Y).
        """
    )


def nonlinear_tc_program(source: object = 0) -> Program:
    """Nonlinear (divide-and-conquer) transitive closure: t = e ∪ t∘t.

    "Nonlinear recursion frequently arises in divide-and-conquer algorithms"
    (Section 1.2); this is the canonical instance.
    """
    return parse_program(
        f"""
        goal(Z) <- t({source}, Z).
        t(X, Y) <- e(X, Y).
        t(X, Y) <- t(X, U), t(U, Y).
        """
    )


def left_recursive_tc_program(source: object = 0) -> Program:
    """Left-recursive transitive closure — loops forever in Prolog.

    "The method is certain to terminate, avoiding the well-known 'left
    recursion' problems of strictly top-down methods" (Section 1.2).
    """
    return parse_program(
        f"""
        goal(Z) <- t({source}, Z).
        t(X, Y) <- t(X, U), e(U, Y).
        t(X, Y) <- e(X, Y).
        """
    )


def same_generation_program(person: object = 0) -> Program:
    """The classic same-generation program over ``par`` (nonlinear)."""
    return parse_program(
        f"""
        goal(Z) <- sg({person}, Z).
        sg(X, Y) <- par(X, P), par(Y, P).
        sg(X, Y) <- par(X, U), sg(U, V), par(Y, V).
        """
    )


def mutual_recursion_program(source: object = 0) -> Program:
    """Two mutually recursive predicates (odd/even path lengths)."""
    return parse_program(
        f"""
        goal(Z) <- oddp({source}, Z).
        oddp(X, Y) <- e(X, Y).
        oddp(X, Y) <- e(X, U), evenp(U, Y).
        evenp(X, Y) <- e(X, U), oddp(U, Y).
        """
    )


def nonrecursive_join_program() -> Program:
    """A nonrecursive three-way join chain (the Reiter [Rei78] regime)."""
    return parse_program(
        """
        goal(X, Z) <- path3(X, Z).
        path3(X, Z) <- a(X, Y), b(Y, U), c(U, Z).
        """
    )


def bill_of_materials_program(assembly: object = "widget") -> Program:
    """Part explosion over a bill of materials — a deductive-DB classic.

    ``uses(A, P)`` records that assembly A directly contains part P;
    ``contains`` is its transitive closure, asked for one assembly.  The
    recursion is the divide-and-conquer (nonlinear) shape of Section 1.2.
    """
    return parse_program(
        f"""
        goal(P) <- contains({assembly}, P).
        contains(A, P) <- uses(A, P).
        contains(A, P) <- contains(A, S), contains(S, P).
        """
    )
