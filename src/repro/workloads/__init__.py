"""Workloads: the paper's example programs and synthetic EDB generators."""

from .generators import (
    bom_tables,
    chain_edges,
    cycle_edges,
    cylinder_edges,
    facts_from_tables,
    grid_edges,
    layered_dag_edges,
    p1_tables,
    pair_table,
    random_digraph_edges,
    tree_parent_edges,
)
from .programs import (
    P1_TEXT,
    bill_of_materials_program,
    adorned_head_df,
    ancestor_program,
    left_recursive_tc_program,
    mutual_recursion_program,
    nonlinear_tc_program,
    nonrecursive_join_program,
    program_p1,
    rule_r1,
    rule_r2,
    rule_r3,
    same_generation_program,
)

__all__ = [
    "chain_edges", "cycle_edges", "cylinder_edges", "tree_parent_edges", "random_digraph_edges",
    "layered_dag_edges", "grid_edges", "pair_table", "facts_from_tables",
    "p1_tables", "bom_tables", "bill_of_materials_program",
    "P1_TEXT", "program_p1", "rule_r1", "rule_r2", "rule_r3",
    "adorned_head_df", "ancestor_program", "nonlinear_tc_program",
    "left_recursive_tc_program", "same_generation_program",
    "mutual_recursion_program", "nonrecursive_join_program",
]
