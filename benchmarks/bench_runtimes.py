"""Runtime comparison — simulator vs asyncio vs per-node mp vs pooled shards.

All runtimes execute the *same* node logic over the same graph; the
simulator is the measurement substrate (deterministic, oracle-capable), the
asyncio runtime the demonstration that the architecture really runs as
independent concurrent processes ("a natural approach to parallel
implementation", §1.2), and the two multiprocessing runtimes bracket the
IPC design space: one OS process + one Manager-brokered queue per node
(every message a synchronous RPC) versus a fixed pool of shard workers
exchanging ``MessageBatch`` envelopes (IPC amortized over whole bursts).
The tables report answers, messages, and timing; the assertions are exact
answer equality plus the headline factor — pooled shards ≥5× over per-node
mp on a 20k-fact transitive-closure workload, in the simulator's ballpark.
"""

import time

import pytest

from repro.baselines import naive
from repro.network.engine import evaluate
from repro.runtime import evaluate_async, evaluate_multiprocessing, evaluate_pool
from repro.workloads import (
    bill_of_materials_program,
    bom_tables,
    facts_from_tables,
    left_recursive_tc_program,
    nonlinear_tc_program,
    random_digraph_edges,
)

from _support import emit_json, emit_table, ratio


def workloads():
    edges = random_digraph_edges(12, 32, seed=15) + [(0, 1)]
    return [
        ("nonlinear tc", nonlinear_tc_program(0).with_facts(
            facts_from_tables({"e": edges}))),
        ("bill of materials", bill_of_materials_program().with_facts(
            facts_from_tables(bom_tables(5, 3, 6, seed=4)))),
    ]


def test_runtimes_agree_table():
    rows = []
    for name, program in workloads():
        oracle = naive.goal_answers(program)
        start = time.perf_counter()
        sim = evaluate(program)
        t_sim = time.perf_counter() - start
        start = time.perf_counter()
        conc = evaluate_async(program)
        t_conc = time.perf_counter() - start
        assert sim.answers == conc.answers == oracle
        rows.append(
            (name, len(oracle), sim.total_messages, conc.messages_sent, conc.tasks)
        )
        for runtime, seconds, logical in (
            ("simulator", t_sim, sim.total_messages),
            ("asyncio", t_conc, conc.messages_sent),
        ):
            emit_json(
                {
                    "bench": "runtimes_agree",
                    "workload": name,
                    "runtime": runtime,
                    "knobs": {"package_requests": False, "tuple_sets": True},
                    "seconds": round(seconds, 4),
                    "logical_messages": logical,
                    "answers": len(oracle),
                }
            )
    emit_table(
        "runtimes: deterministic simulator vs asyncio (same node code)",
        ["workload", "answers", "sim msgs", "asyncio msgs", "asyncio tasks"],
        rows,
    )
    # Message counts may differ (interleaving changes protocol probing and
    # replay opportunities) but must be the same order of magnitude.
    for _, _, sim_msgs, conc_msgs, _ in rows:
        assert conc_msgs < 10 * sim_msgs
        assert sim_msgs < 10 * conc_msgs


def tc_bushy_20k_workload():
    """A ≥20k-fact transitive closure shaped for set-at-a-time evaluation.

    A uniform 27-ary tree of depth 3 (27 + 729 + 19683 = 20439 edges, all
    reachable from the root): every expansion step produces 27 sibling
    tuples for the same binding, so answer packaging has real sets to ship
    and the bulk join kernels real batches to probe.  The per-tuple path
    pays one message and one index probe per row; the packaged path one
    ``TupleSet`` per burst and one probe per distinct key.
    """
    branch, depth = 27, 3
    edges = []
    level = [0]
    next_id = 1
    for _ in range(depth):
        new = []
        for parent in level:
            for _ in range(branch):
                edges.append((parent, next_id))
                new.append(next_id)
                next_id += 1
        level = new
    program = left_recursive_tc_program(0).with_facts(
        facts_from_tables({"e": edges})
    )
    expected = {(i,) for i in range(1, next_id)}
    return program, expected, len(edges)


def test_tuple_sets_ab_table():
    """The PR-3 headline: packaged answer sets ≥2.5x over per-tuple.

    Request packaging (footnote 2) is ON for both sides so the A/B isolates
    *answer* packaging + bulk join kernels — the per-tuple baseline already
    enjoys packaged requests and loses only the set-at-a-time machinery.
    """
    program, expected, n_facts = tc_bushy_20k_workload()
    assert n_facts >= 20_000

    def timed(tuple_sets):
        best = None
        for _ in range(2):
            start = time.perf_counter()
            run = evaluate(program, package_requests=True, tuple_sets=tuple_sets)
            elapsed = time.perf_counter() - start
            assert run.answers == expected
            if best is None or elapsed < best[0]:
                best = (elapsed, run)
        return best

    t_on, on = timed(True)
    t_off, off = timed(False)

    rows = [
        (
            "tuple sets ON",
            f"{t_on:.2f}",
            on.total_messages,
            on.physical_messages,
            on.stats.tuple_sets,
            on.join_lookups,
        ),
        (
            "tuple sets OFF",
            f"{t_off:.2f}",
            off.total_messages,
            off.physical_messages,
            off.stats.tuple_sets,
            off.join_lookups,
        ),
    ]
    emit_table(
        f"set-at-a-time A/B: {n_facts}-fact bushy transitive closure, "
        f"{len(expected)} answers (packaged requests both sides)",
        ["mode", "seconds", "logical msgs", "physical msgs", "sets", "join lookups"],
        rows,
    )
    emit_table(
        "headline factors",
        ["comparison", "factor"],
        [
            ("tuple sets vs per-tuple (wall)", f"{ratio(t_off, t_on):.2f}x"),
            (
                "physical deliveries saved",
                f"{ratio(off.physical_messages, on.physical_messages):.2f}x",
            ),
            ("join lookups saved", f"{ratio(off.join_lookups, on.join_lookups):.2f}x"),
        ],
    )
    for mode, seconds, run in (("on", t_on, on), ("off", t_off, off)):
        emit_json(
            {
                "bench": "tuple_sets_ab",
                "workload": f"tc-bushy-{n_facts}",
                "runtime": "simulator",
                "knobs": {"package_requests": True, "tuple_sets": mode == "on"},
                "seconds": round(seconds, 4),
                "logical_messages": run.total_messages,
                "physical_messages": run.physical_messages,
                "tuple_sets": run.stats.tuple_sets,
                "join_lookups": run.join_lookups,
                "answers": len(run.answers),
            }
        )
    # The acceptance bar: set-at-a-time wall time ≥2.5x better.
    assert t_off >= 2.5 * t_on, f"tuple sets only {ratio(t_off, t_on):.2f}x"
    # And the bulk kernels really probe per distinct key, not per row.
    assert on.join_lookups < off.join_lookups


def tc_20k_workload():
    """A ≥20k-fact transitive-closure workload for the process runtimes.

    The reachable part is a complete binary tree (2047 nodes): the frontier
    fans out, so many tuple requests are in flight at once and cross-shard
    batches actually fill — the regime batching is for.  (A long chain is
    the adversarial case: one request at a time, nothing to amortize.)  The
    other ~18k edges are disjoint pairs — real facts the EDB leaf must
    index and the semijoin must skip, shaped so the bottom-up closure stays
    small enough to verify analytically.
    """
    tree = [(i, 2 * i + 1) for i in range(1023)] + [
        (i, 2 * i + 2) for i in range(1023)
    ]
    noise = [(100_000 + 2 * i, 100_001 + 2 * i) for i in range(18_000)]
    program = left_recursive_tc_program(0).with_facts(
        facts_from_tables({"e": tree + noise})
    )
    expected = {(i,) for i in range(1, 2047)}
    return program, expected, len(tree) + len(noise)


def test_pool_vs_per_node_mp_table():
    program, expected, n_facts = tc_20k_workload()
    assert n_facts >= 20_000

    start = time.perf_counter()
    sim = evaluate(program)
    t_sim = time.perf_counter() - start
    assert sim.answers == expected

    def timed_pool(workers, batch_size):
        best = None
        for _ in range(2):  # best-of-2: fork noise is the variance source
            start = time.perf_counter()
            run = evaluate_pool(
                program, workers=workers, batch_size=batch_size, timeout=300
            )
            elapsed = time.perf_counter() - start
            assert run.answers == expected
            if best is None or elapsed < best[0]:
                best = (elapsed, run)
        return best

    t_pool1, pool1 = timed_pool(workers=1, batch_size=64)
    t_pool2, pool2 = timed_pool(workers=2, batch_size=64)

    start = time.perf_counter()
    mp_run = evaluate_multiprocessing(program, timeout=500)
    t_mp = time.perf_counter() - start
    assert mp_run.answers == expected

    rows = [
        ("simulator", f"{t_sim:.2f}", sim.total_messages, "-", "-", "-"),
        (
            "pool w=1",
            f"{t_pool1:.2f}",
            "-",
            pool1.cross_messages,
            pool1.cross_batches,
            f"{pool1.batching_factor:.1f}",
        ),
        (
            "pool w=2",
            f"{t_pool2:.2f}",
            "-",
            pool2.cross_messages,
            pool2.cross_batches,
            f"{pool2.batching_factor:.1f}",
        ),
        (f"per-node mp ({mp_run.processes} procs)", f"{t_mp:.2f}", "-", "-", "-", "-"),
    ]
    emit_table(
        f"pooled shards vs per-node mp: {n_facts}-fact transitive closure, "
        f"{len(expected)} answers",
        ["runtime", "seconds", "msgs", "cross msgs", "batches", "msgs/batch"],
        rows,
    )
    t_pool = min(t_pool1, t_pool2)
    emit_table(
        "headline factors",
        ["comparison", "factor"],
        [
            ("pool vs per-node mp", f"{ratio(t_mp, t_pool):.1f}x"),
            ("pool vs simulator", f"{ratio(t_sim, t_pool):.2f}x"),
        ],
    )
    for runtime, seconds, logical in (
        ("simulator", t_sim, sim.total_messages),
        ("pool-w1", t_pool1, pool1.cross_messages),
        ("pool-w2", t_pool2, pool2.cross_messages),
        ("per-node-mp", t_mp, None),
    ):
        emit_json(
            {
                "bench": "pool_vs_per_node_mp",
                "workload": f"tc-binary-{n_facts}",
                "runtime": runtime,
                "knobs": {"package_requests": False, "tuple_sets": True},
                "seconds": round(seconds, 4),
                "logical_messages": logical,
                "answers": len(expected),
            }
        )
    # The tentpole claim: batched shard channels beat one-RPC-per-message
    # by ≥5x, and land in the simulator's ballpark.
    assert t_mp >= 5 * t_pool, f"pool only {ratio(t_mp, t_pool):.1f}x over mp"
    assert t_pool <= 3 * t_sim, f"pool {ratio(t_pool, t_sim):.1f}x slower than sim"
    # Batching really amortizes: many messages per queue operation.
    assert pool2.batching_factor > 10


@pytest.mark.benchmark(group="runtimes")
@pytest.mark.parametrize("runtime", ["simulator", "asyncio", "pool"])
def test_bench_runtimes(benchmark, runtime):
    name, program = workloads()[0]
    if runtime == "simulator":
        result = benchmark(evaluate, program)
        assert result.completed
    elif runtime == "asyncio":
        result = benchmark(evaluate_async, program)
        assert result.completed
    else:
        result = benchmark.pedantic(
            evaluate_pool,
            args=(program,),
            kwargs={"workers": 2, "batch_size": 64, "timeout": 120},
            rounds=3,
            iterations=1,
        )
        assert result.completed
