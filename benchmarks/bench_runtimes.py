"""Runtime comparison — the deterministic simulator vs the asyncio runtime.

Both runtimes execute the *same* node logic over the same graph; the
simulator is the measurement substrate (deterministic, oracle-capable), the
asyncio runtime the demonstration that the architecture really runs as
independent concurrent processes ("a natural approach to parallel
implementation", §1.2).  The table reports answers, messages, and timing for
both on a shared recursive workload; the assertion is exact answer equality.
"""

import pytest

from repro.baselines import naive
from repro.network.engine import evaluate
from repro.runtime import evaluate_async
from repro.workloads import (
    bill_of_materials_program,
    bom_tables,
    facts_from_tables,
    nonlinear_tc_program,
    random_digraph_edges,
)

from _support import emit_table


def workloads():
    edges = random_digraph_edges(12, 32, seed=15) + [(0, 1)]
    return [
        ("nonlinear tc", nonlinear_tc_program(0).with_facts(
            facts_from_tables({"e": edges}))),
        ("bill of materials", bill_of_materials_program().with_facts(
            facts_from_tables(bom_tables(5, 3, 6, seed=4)))),
    ]


def test_runtimes_agree_table():
    rows = []
    for name, program in workloads():
        oracle = naive.goal_answers(program)
        sim = evaluate(program)
        conc = evaluate_async(program)
        assert sim.answers == conc.answers == oracle
        rows.append(
            (name, len(oracle), sim.total_messages, conc.messages_sent, conc.tasks)
        )
    emit_table(
        "runtimes: deterministic simulator vs asyncio (same node code)",
        ["workload", "answers", "sim msgs", "asyncio msgs", "asyncio tasks"],
        rows,
    )
    # Message counts may differ (interleaving changes protocol probing and
    # replay opportunities) but must be the same order of magnitude.
    for _, _, sim_msgs, conc_msgs, _ in rows:
        assert conc_msgs < 10 * sim_msgs
        assert sim_msgs < 10 * conc_msgs


@pytest.mark.benchmark(group="runtimes")
@pytest.mark.parametrize("runtime", ["simulator", "asyncio"])
def test_bench_runtimes(benchmark, runtime):
    name, program = workloads()[0]
    if runtime == "simulator":
        result = benchmark(evaluate, program)
        assert result.completed
    else:
        result = benchmark(evaluate_async, program)
        assert result.completed
