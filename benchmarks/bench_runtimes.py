"""Runtime comparison — simulator vs asyncio vs per-node mp vs pooled shards.

All runtimes execute the *same* node logic over the same graph; the
simulator is the measurement substrate (deterministic, oracle-capable), the
asyncio runtime the demonstration that the architecture really runs as
independent concurrent processes ("a natural approach to parallel
implementation", §1.2), and the two multiprocessing runtimes bracket the
IPC design space: one OS process + one Manager-brokered queue per node
(every message a synchronous RPC) versus a fixed pool of shard workers
exchanging ``MessageBatch`` envelopes (IPC amortized over whole bursts).
The tables report answers, messages, and timing; the assertions are exact
answer equality plus the headline factor — pooled shards ≥5× over per-node
mp on a 20k-fact transitive-closure workload, in the simulator's ballpark.
"""

import time

import pytest

from repro.baselines import naive
from repro.network.engine import evaluate
from repro.runtime import evaluate_async, evaluate_multiprocessing, evaluate_pool
from repro.workloads import (
    bill_of_materials_program,
    bom_tables,
    facts_from_tables,
    left_recursive_tc_program,
    nonlinear_tc_program,
    random_digraph_edges,
)

from _support import emit_table, ratio


def workloads():
    edges = random_digraph_edges(12, 32, seed=15) + [(0, 1)]
    return [
        ("nonlinear tc", nonlinear_tc_program(0).with_facts(
            facts_from_tables({"e": edges}))),
        ("bill of materials", bill_of_materials_program().with_facts(
            facts_from_tables(bom_tables(5, 3, 6, seed=4)))),
    ]


def test_runtimes_agree_table():
    rows = []
    for name, program in workloads():
        oracle = naive.goal_answers(program)
        sim = evaluate(program)
        conc = evaluate_async(program)
        assert sim.answers == conc.answers == oracle
        rows.append(
            (name, len(oracle), sim.total_messages, conc.messages_sent, conc.tasks)
        )
    emit_table(
        "runtimes: deterministic simulator vs asyncio (same node code)",
        ["workload", "answers", "sim msgs", "asyncio msgs", "asyncio tasks"],
        rows,
    )
    # Message counts may differ (interleaving changes protocol probing and
    # replay opportunities) but must be the same order of magnitude.
    for _, _, sim_msgs, conc_msgs, _ in rows:
        assert conc_msgs < 10 * sim_msgs
        assert sim_msgs < 10 * conc_msgs


def tc_20k_workload():
    """A ≥20k-fact transitive-closure workload for the process runtimes.

    The reachable part is a complete binary tree (2047 nodes): the frontier
    fans out, so many tuple requests are in flight at once and cross-shard
    batches actually fill — the regime batching is for.  (A long chain is
    the adversarial case: one request at a time, nothing to amortize.)  The
    other ~18k edges are disjoint pairs — real facts the EDB leaf must
    index and the semijoin must skip, shaped so the bottom-up closure stays
    small enough to verify analytically.
    """
    tree = [(i, 2 * i + 1) for i in range(1023)] + [
        (i, 2 * i + 2) for i in range(1023)
    ]
    noise = [(100_000 + 2 * i, 100_001 + 2 * i) for i in range(18_000)]
    program = left_recursive_tc_program(0).with_facts(
        facts_from_tables({"e": tree + noise})
    )
    expected = {(i,) for i in range(1, 2047)}
    return program, expected, len(tree) + len(noise)


def test_pool_vs_per_node_mp_table():
    program, expected, n_facts = tc_20k_workload()
    assert n_facts >= 20_000

    start = time.perf_counter()
    sim = evaluate(program)
    t_sim = time.perf_counter() - start
    assert sim.answers == expected

    def timed_pool(workers, batch_size):
        best = None
        for _ in range(2):  # best-of-2: fork noise is the variance source
            start = time.perf_counter()
            run = evaluate_pool(
                program, workers=workers, batch_size=batch_size, timeout=300
            )
            elapsed = time.perf_counter() - start
            assert run.answers == expected
            if best is None or elapsed < best[0]:
                best = (elapsed, run)
        return best

    t_pool1, pool1 = timed_pool(workers=1, batch_size=64)
    t_pool2, pool2 = timed_pool(workers=2, batch_size=64)

    start = time.perf_counter()
    mp_run = evaluate_multiprocessing(program, timeout=500)
    t_mp = time.perf_counter() - start
    assert mp_run.answers == expected

    rows = [
        ("simulator", f"{t_sim:.2f}", sim.total_messages, "-", "-", "-"),
        (
            "pool w=1",
            f"{t_pool1:.2f}",
            "-",
            pool1.cross_messages,
            pool1.cross_batches,
            f"{pool1.batching_factor:.1f}",
        ),
        (
            "pool w=2",
            f"{t_pool2:.2f}",
            "-",
            pool2.cross_messages,
            pool2.cross_batches,
            f"{pool2.batching_factor:.1f}",
        ),
        (f"per-node mp ({mp_run.processes} procs)", f"{t_mp:.2f}", "-", "-", "-", "-"),
    ]
    emit_table(
        f"pooled shards vs per-node mp: {n_facts}-fact transitive closure, "
        f"{len(expected)} answers",
        ["runtime", "seconds", "msgs", "cross msgs", "batches", "msgs/batch"],
        rows,
    )
    t_pool = min(t_pool1, t_pool2)
    emit_table(
        "headline factors",
        ["comparison", "factor"],
        [
            ("pool vs per-node mp", f"{ratio(t_mp, t_pool):.1f}x"),
            ("pool vs simulator", f"{ratio(t_sim, t_pool):.2f}x"),
        ],
    )
    # The tentpole claim: batched shard channels beat one-RPC-per-message
    # by ≥5x, and land in the simulator's ballpark.
    assert t_mp >= 5 * t_pool, f"pool only {ratio(t_mp, t_pool):.1f}x over mp"
    assert t_pool <= 3 * t_sim, f"pool {ratio(t_pool, t_sim):.1f}x slower than sim"
    # Batching really amortizes: many messages per queue operation.
    assert pool2.batching_factor > 10


@pytest.mark.benchmark(group="runtimes")
@pytest.mark.parametrize("runtime", ["simulator", "asyncio", "pool"])
def test_bench_runtimes(benchmark, runtime):
    name, program = workloads()[0]
    if runtime == "simulator":
        result = benchmark(evaluate, program)
        assert result.completed
    elif runtime == "asyncio":
        result = benchmark(evaluate_async, program)
        assert result.completed
    else:
        result = benchmark.pedantic(
            evaluate_pool,
            args=(program,),
            kwargs={"workers": 2, "batch_size": 64, "timeout": 120},
            rounds=3,
            iterations=1,
        )
        assert result.completed
