"""Experiment claim-cost — the §4.3 cost model against measured join work.

The model predicts a total cost for each evaluation order of a rule; here
every permutation of R1's and R2's bodies is both *estimated* (model) and
*measured* (actual left-deep hash joins over synthetic relations obeying the
model's assumptions).  The series: rank agreement between predicted and
measured orderings, and the predicted-vs-measured cost of the best and worst
orders.  Shape assertions: the model's best order is within the measured top
tier, and predicted and measured rankings correlate positively.
"""

import itertools
import random

import pytest

from repro.core.costmodel import CostModel, rank_orders
from repro.relational.algebra import WorkMeter, natural_join
from repro.relational.relation import Relation
from repro.workloads import adorned_head_df, rule_r1, rule_r2

from _support import emit_table


def synthetic_relations(rule, n: int, seed: int):
    """One relation per subgoal with columns named by the rule's variables.

    Sizes comparable (assumption 1); values drawn so each shared variable
    joins with moderate selectivity (assumption 3's spirit).
    """
    rng = random.Random(seed)
    relations = []
    domain = max(2, int(n ** 0.5))
    for subgoal in rule.body:
        columns = [v.name for v in sorted(subgoal.variable_set(), key=lambda v: v.name)]
        rows = {
            tuple(rng.randrange(domain) for _ in columns) for _ in range(n)
        }
        relations.append(Relation(tuple(columns), rows))
    return relations


def measure_order(rule, relations, order, binding_value=0):
    """Left-deep join in the given order, seeded with X = binding_value."""
    meter = WorkMeter()
    acc = Relation(("X",), [(binding_value,)])
    for index in order:
        acc = natural_join(acc, relations[index], meter)
    return meter.total_join_cost, meter.peak_intermediate


def rank_correlation(xs, ys):
    """Kendall-style concordance in [-1, 1] between two paired sequences."""
    concordant = discordant = 0
    for (x1, y1), (x2, y2) in itertools.combinations(zip(xs, ys), 2):
        sx, sy = (x1 > x2) - (x1 < x2), (y1 > y2) - (y1 < y2)
        if sx * sy > 0:
            concordant += 1
        elif sx * sy < 0:
            discordant += 1
    total = concordant + discordant
    return (concordant - discordant) / total if total else 0.0


@pytest.mark.parametrize(
    ("name", "rule_fn"), [("R1", rule_r1), ("R2", rule_r2)]
)
def test_claim_costmodel_ranking(name, rule_fn):
    rule = rule_fn()
    head = adorned_head_df(rule)
    model = CostModel(alpha=0.5, base_size=10**4)
    estimates = rank_orders(rule, head, model)
    relations = synthetic_relations(rule, n=400, seed=3)

    predicted, measured, rows = [], [], []
    for estimate in estimates:
        cost, peak = measure_order(rule, relations, estimate.order)
        predicted.append(estimate.total_cost)
        measured.append(cost)
    tau = rank_correlation(predicted, measured)

    best = estimates[0]
    worst = estimates[-1]
    best_measured, _ = measure_order(rule, relations, best.order)
    worst_measured, _ = measure_order(rule, relations, worst.order)
    emit_table(
        f"claim-cost: §4.3 model vs measured join work on {name}",
        ["orders", "kendall tau", "best order", "best measured",
         "worst order", "worst measured"],
        [(len(estimates), f"{tau:.2f}", best.order, best_measured,
          worst.order, worst_measured)],
    )
    # The model must rank usefully: positive correlation, and its chosen
    # best order must beat its chosen worst by a clear margin.
    assert tau > 0.3
    assert best_measured * 2 < worst_measured
    # The model's best order lands in the measured top third.
    ranked_by_measure = sorted(zip(measured, [e.order for e in estimates]))
    top_third = {order for _, order in ranked_by_measure[: max(1, len(measured) // 3)]}
    assert best.order in top_third


@pytest.mark.benchmark(group="claim-cost")
def test_bench_rank_orders(benchmark):
    rule = rule_r2()
    head = adorned_head_df(rule)
    estimates = benchmark(rank_orders, rule, head)
    assert len(estimates) == 120
