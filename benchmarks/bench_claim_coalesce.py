"""Ablation — coalescing identical goal nodes (§2.2's single-processor mode).

"Several nodes in the graph may have identical predicates and binding
patterns.  For single processor computation it is probably desirable to
coalesce such nodes (thereby introducing cross and forward edges).  However,
for distributed or parallel computation, combining nodes may well be
counterproductive."

Series: graph size, total messages, and tuples materialized with and without
coalescing, across the recursion-shaped workloads.  Shape: coalescing always
shrinks the graph and the message count (the single-processor win the paper
predicts) while preserving answers and the termination guarantees — at the
price of shared nodes, i.e. the loss of per-branch parallelism the paper
warns about (measured here as the reduced process count).
"""

import pytest

from repro.baselines import naive
from repro.network.engine import evaluate
from repro.workloads import (
    chain_edges,
    cycle_edges,
    facts_from_tables,
    mutual_recursion_program,
    nonlinear_tc_program,
    program_p1,
    same_generation_program,
    tree_parent_edges,
)

from _support import emit_table, ratio


def cases():
    return [
        ("p1", program_p1().with_facts(facts_from_tables({
            "r": [("a", 1), (1, 2), (2, 3)], "q": [(1, 2), (2, 3), (3, 1)],
        }))),
        ("nonlinear tc", nonlinear_tc_program(0).with_facts(
            facts_from_tables({"e": cycle_edges(10)}))),
        ("mutual", mutual_recursion_program(0).with_facts(
            facts_from_tables({"e": chain_edges(10)}))),
        ("same-gen", same_generation_program(5).with_facts(
            facts_from_tables({"par": tree_parent_edges(4, 2)}))),
    ]


def test_claim_coalesce_table():
    rows = []
    for name, program in cases():
        oracle = naive.goal_answers(program)
        plain = evaluate(program)
        merged = evaluate(program, coalesce=True)
        assert plain.answers == merged.answers == oracle
        assert merged.protocol_violations == []
        rows.append(
            (
                name,
                plain.graph.size(),
                merged.graph.size(),
                plain.total_messages,
                merged.total_messages,
                f"{ratio(plain.total_messages, merged.total_messages):.2f}x",
            )
        )
    emit_table(
        "claim-coalesce: single-processor coalescing vs distributed graphs",
        ["case", "nodes", "nodes (coalesced)", "msgs", "msgs (coalesced)", "msg factor"],
        rows,
    )
    for row in rows:
        assert row[2] <= row[1]  # graph never grows
        assert row[4] <= row[3]  # messages never grow on these workloads


def test_claim_coalesce_preserves_termination_guarantees():
    for name, program in cases():
        for seed in (1, 23):
            result = evaluate(program, coalesce=True, seed=seed)
            assert result.completed
            assert result.protocol_violations == []


@pytest.mark.benchmark(group="claim-coalesce")
@pytest.mark.parametrize("mode", ["distributed", "coalesced"])
def test_bench_coalesce(benchmark, mode):
    program = cases()[1][1]
    result = benchmark(evaluate, program, coalesce=(mode == "coalesced"))
    assert result.completed
