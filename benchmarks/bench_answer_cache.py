"""Answer-cache benchmark: zipf-mix repeat queries under the service.

The PR 6 headline: real query streams are skewed — a few hot queries
repeat constantly — and a completed answer set served from the
versioned answer cache costs a dictionary lookup instead of a fixpoint.
The workload here is a zipf-distributed mix over distinct TC queries
(hot head, long tail) fired by concurrent clients at the TCP server,
run twice: answer cache **off** (every repeat re-evaluates; the PR 5
architecture) and **on** (repeats under an unchanged ``db_version``
skip evaluation entirely).

Reported per configuration: throughput, p50/p99, and — for the cached
run — the *cold* (first-occurrence) vs *repeat* latency split.  The
acceptance bar from the issue: repeat-query p99 at least **10x** below
cold p99.  Records land in ``BENCH_PR6.json`` at the repo root, next to
the PR 5 baseline (7.1 qps / 2.55 s p99 warm mixed load) they improve
on.

Usage::

    PYTHONPATH=src python benchmarks/bench_answer_cache.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import threading
import time

from _support import (
    BENCH_PR5_JSON_PATH,
    BENCH_PR6_JSON_PATH,
    emit_json,
    emit_table,
    ratio,
)
from bench_service import tc_bushy_workload
from repro.service import ServerConfig, ServerThread, ServiceClient, SharedSession

N_CLIENTS = 8
ZIPF_S = 1.1  # skew exponent: rank r drawn with weight 1/r**s


def zipf_schedule(variants: int, requests: int, seed: int = 7464) -> list[str]:
    """A fixed, seeded zipf-mix request schedule over distinct TC queries.

    Each variant queries reachability from a different start node, so
    every variant is a distinct Theorem 2.1 cache key (not mere variable
    renamings of one another).
    """
    queries = [f"t({node}, Z)" for node in range(variants)]
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(variants)]
    rng = random.Random(seed)
    return [rng.choices(queries, weights=weights)[0] for _ in range(requests)]


def drive_load(program, variants, schedule, answer_cache_size):
    """Prime each variant cold, then fire the zipf mix from N clients.

    The prime phase measures *cold* latencies (one evaluation per
    distinct query, serial, uncontended); the mix phase then measures
    the steady state the cache is for — repeat queries under an
    unchanged ``db_version``.  Returns ``(cold_latencies, records,
    server_stats, mix_wall)`` with one ``(query, latency,
    answer_cached, coalesced)`` record per mix request.
    """
    shared = SharedSession(program, answer_cache_size=answer_cache_size)
    config = ServerConfig(
        max_concurrent=N_CLIENTS, max_queue=4 * N_CLIENTS, default_deadline=300.0
    )
    per_client = [schedule[i::N_CLIENTS] for i in range(N_CLIENTS)]
    records = []
    rec_lock = threading.Lock()
    errors = []
    start_barrier = threading.Barrier(N_CLIENTS + 1)

    def client(i, port):
        mine = []
        try:
            with ServiceClient(port=port, timeout=300.0) as c:
                start_barrier.wait()
                for q in per_client[i]:
                    t0 = time.perf_counter()
                    reply = c.query(q, timeout=300.0)
                    mine.append(
                        (
                            q,
                            time.perf_counter() - t0,
                            reply.answer_cached,
                            reply.coalesced,
                        )
                    )
        except Exception as exc:  # noqa: BLE001 - surface after join
            errors.append(exc)
            try:
                start_barrier.abort()
            except threading.BrokenBarrierError:
                pass
        with rec_lock:
            records.extend(mine)

    with ServerThread(shared, config) as port:
        cold = []
        with ServiceClient(port=port, timeout=300.0) as c:
            for node in range(variants):
                t0 = time.perf_counter()
                reply = c.query(f"t({node}, Z)", timeout=300.0)
                cold.append(time.perf_counter() - t0)
                assert not reply.answer_cached  # genuinely cold
        threads = [
            threading.Thread(target=client, args=(i, port)) for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        start_barrier.wait()
        wall_start = time.perf_counter()
        for t in threads:
            t.join()
        wall = time.perf_counter() - wall_start
        if errors:
            raise errors[0]
        stats = shared.stats()
    return cold, records, stats, wall


def p(latencies, q):
    if not latencies:
        return 0.0
    if len(latencies) == 1:
        return latencies[0]
    return statistics.quantiles(latencies, n=100)[q - 1]


def pr5_baseline():
    """The PR 5 warm-load record this benchmark is measured against."""
    try:
        with open(BENCH_PR5_JSON_PATH) as handle:
            for line in handle:
                record = json.loads(line)
                if record.get("bench") == "service_warm_load":
                    return record
    except (OSError, ValueError):
        pass
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller tree and fewer requests (CI-sized)"
    )
    args = parser.parse_args(argv)
    branch, depth, requests, variants = (
        (7, 3, 96, 8) if args.quick else (27, 3, 240, 16)
    )

    program, expected, n_facts = tc_bushy_workload(branch, depth)
    schedule = zipf_schedule(variants, requests)
    hot_share = schedule.count(schedule[0]) / len(schedule)
    print(
        f"workload: {n_facts}-fact bushy TC, {variants} zipf variants over "
        f"{requests} requests ({hot_share:.0%} to the hottest)"
    )

    rows = []
    results = {}
    for label, cache_size in (("cache off", 0), ("cache on", 256)):
        cold, records, stats, wall = drive_load(program, variants, schedule, cache_size)
        latencies = [latency for _, latency, _, _ in records]
        hits = (stats["answer_cache"] or {}).get("hits", 0)
        results[label] = {
            "wall": wall,
            "qps": len(records) / wall,
            "p50": p(latencies, 50),
            "p99": p(latencies, 99),
            "cold_p99": p(cold, 99),
            "hits": hits,
            "evaluations": stats["queries"] - stats["coalesced_joins"] - hits,
        }
        r = results[label]
        rows.append(
            (
                label,
                f"{r['qps']:.1f}",
                f"{r['cold_p99'] * 1e3:.1f}",
                f"{r['p50'] * 1e3:.1f}",
                f"{r['p99'] * 1e3:.1f}",
                r["hits"],
                r["evaluations"],
            )
        )

    emit_table(
        f"zipf mix, {N_CLIENTS} clients, {requests} requests, {variants} variants",
        ["config", "mix qps", "cold p99 ms", "mix p50 ms", "mix p99 ms", "hits", "evals"],
        rows,
    )

    on, off = results["cache on"], results["cache off"]
    # The acceptance bar: with the cache on, the repeat-query (mix) p99
    # sits >= 10x below the cold (first-evaluation) p99.
    repeat_factor = ratio(on["cold_p99"], on["p99"])
    qps_factor = ratio(on["qps"], off["qps"])
    comparison = [
        ("repeat p99 vs cold p99 (cache on)", f"{repeat_factor:.0f}x lower"),
        ("throughput, cache on vs off", f"{qps_factor:.1f}x"),
    ]
    baseline = pr5_baseline()
    if baseline is not None:
        comparison.append(
            (
                "throughput vs PR 5 warm-load baseline",
                f"{ratio(on['qps'], baseline['throughput_qps']):.1f}x "
                f"({baseline['throughput_qps']} qps recorded)",
            )
        )
        comparison.append(
            (
                "p99 vs PR 5 warm-load baseline",
                f"{ratio(baseline['p99_seconds'], on['p99']):.1f}x lower "
                f"({baseline['p99_seconds']} s recorded)",
            )
        )
    emit_table("headline factors", ["comparison", "factor"], comparison)

    emit_json(
        {
            "bench": "answer_cache_zipf",
            "workload": f"tc-bushy-{n_facts}",
            "runtime": "service",
            "knobs": {
                "clients": N_CLIENTS,
                "variants": variants,
                "requests": requests,
                "zipf_s": ZIPF_S,
                "quick": args.quick,
            },
            "seconds": round(on["wall"], 4),
            "throughput_qps": round(on["qps"], 2),
            "p50_seconds": round(on["p50"], 6),
            "p99_seconds": round(on["p99"], 6),
            "cold_p99_seconds": round(on["cold_p99"], 6),
            "repeat_vs_cold_factor": round(repeat_factor, 1),
            "cache_off_qps": round(off["qps"], 2),
            "cache_off_p99_seconds": round(off["p99"], 6),
            "answer_cache_hits": on["hits"],
            "evaluations": on["evaluations"],
        },
        path=BENCH_PR6_JSON_PATH,
    )

    # The full workload's cold evaluations run seconds; quick mode's run
    # tens of milliseconds, where connection/loop tail latency — not
    # evaluation — bounds the hit path, so the 10x bar binds full runs
    # and quick (CI) runs assert a looser sanity factor.
    required = 10.0 if not args.quick else 2.0
    failures = []
    if on["hits"] < 1:
        failures.append("the answer cache never served a hit")
    if repeat_factor < required:
        failures.append(
            f"repeat p99 only {repeat_factor:.1f}x below cold p99 "
            f"(need >= {required:.0f}x)"
        )
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print(
        f"ok: repeat p99 {repeat_factor:.0f}x below cold p99, "
        f"{on['hits']} answer-cache hits over {requests} requests, "
        f"{qps_factor:.1f}x throughput vs cache off"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
