"""Experiment claim-existential — class "e": don't transmit what nobody needs.

Section 2.2: a variable occurring nowhere else "could be treated as 'f' and
produce correct results, but the 'e' designation indicates that its value
will not be transmitted, possibly permitting greater efficiency.  For
example, goal p(X^f, Y^e) can be satisfied by producing one tuple for each
unique X even though there may be many Y values that go with a given X."

Series: tuples transmitted and answers for the same query with the second
argument existential vs free, as the Y-fanout per X grows.  Shape: the
existential run is flat in the fanout; the free run grows linearly.
"""

import pytest

from repro.core.adornment import initial_goal_adornment
from repro.core.atoms import atom
from repro.core.parser import parse_program
from repro.core.terms import Variable
from repro.network.engine import evaluate
from repro.workloads import facts_from_tables

from _support import emit_table, ratio

X, Y = Variable("X"), Variable("Y")

TEXT = """
goal(X, Y) <- owner(X, Y).
owner(X, Y) <- asset(X, Y).
"""


def instance(fanout: int):
    rows = [(f"x{i}", f"y{i}_{j}") for i in range(4) for j in range(fanout)]
    return parse_program(TEXT).with_facts(facts_from_tables({"asset": rows}))


def test_claim_existential_projection():
    rows = []
    series = []
    for fanout in (5, 20, 80):
        program = instance(fanout)
        goal_e = initial_goal_adornment(atom("goal", X, Y), existential=[Y])
        goal_f = initial_goal_adornment(atom("goal", X, Y))
        existential = evaluate(program, query_goal=goal_e)
        free = evaluate(program, query_goal=goal_f)
        assert existential.answers == {(f"x{i}",) for i in range(4)}
        assert len(free.answers) == 4 * fanout
        e_msgs = existential.stats.by_kind.get("TupleMessage", 0)
        f_msgs = free.stats.by_kind.get("TupleMessage", 0)
        rows.append(
            (fanout, len(existential.answers), len(free.answers), e_msgs, f_msgs,
             f"{ratio(f_msgs, max(1, e_msgs)):.1f}x")
        )
        series.append((e_msgs, f_msgs))
    emit_table(
        "claim-existential: p(X^f, Y^e) vs p(X^f, Y^f) as Y-fanout grows",
        ["fanout", "answers (e)", "answers (f)", "tuple msgs (e)",
         "tuple msgs (f)", "f/e"],
        rows,
    )
    # The existential run's traffic is flat; the free run's grows.
    assert series[-1][0] <= 2 * series[0][0]
    assert series[-1][1] > 4 * series[0][1]
    assert series[-1][1] > 5 * series[-1][0]


@pytest.mark.benchmark(group="claim-existential")
@pytest.mark.parametrize("mode", ["existential", "free"])
def test_bench_existential(benchmark, mode):
    program = instance(40)
    goal = initial_goal_adornment(
        atom("goal", X, Y), existential=[Y] if mode == "existential" else []
    )
    result = benchmark(evaluate, program, query_goal=goal)
    assert result.completed
