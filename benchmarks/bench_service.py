"""Service load benchmark: concurrent clients vs sequential sessions.

The PR 5 headline: serving many clients from ONE SharedSession beats
giving each client its own single-query session, because (a) the
Theorem 2.1 graph cache is shared across clients, (b) the EDB and its
indexes are built once, and (c) **in-flight coalescing** collapses a
spike of identical queries into one evaluation.

Three phases, all on the 20,439-fact bushy transitive closure from the
PR 3 bench (27-ary tree, depth 3 — every node reachable):

1. *Sequential baseline*: 8 clients served one after another, each by a
   fresh cold Session (per-client rebuild — the no-service architecture).
2. *Cold-cache concurrent service*: the same 8 queries fired at once by
   8 client threads against a cold server.  Coalescing merges them into
   one evaluation; the asserted headline is ≥3x throughput, and the
   ``shared_evaluations`` counter proves the dedup happened.
3. *Warm mixed load*: 200 requests over 8 clients spread across four
   query variants, reporting client-side throughput/p50/p99 plus the
   server's own queue-wait and evaluation histograms.

Records land in ``BENCH_PR5.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]
"""

from __future__ import annotations

import argparse
import statistics
import sys
import threading
import time

from _support import BENCH_PR5_JSON_PATH, emit_json, emit_table, ratio
from repro.service import ServerConfig, ServerThread, ServiceClient, SharedSession
from repro.session import Session
from repro.workloads import facts_from_tables, left_recursive_tc_program

N_CLIENTS = 8


def tc_bushy_workload(branch: int = 27, depth: int = 3):
    """The PR 3 set-at-a-time workload: a uniform tree TC, all reachable."""
    edges = []
    level = [0]
    next_id = 1
    for _ in range(depth):
        new = []
        for parent in level:
            for _ in range(branch):
                edges.append((parent, next_id))
                new.append(next_id)
                next_id += 1
        level = new
    program = left_recursive_tc_program(0).with_facts(
        facts_from_tables({"e": edges})
    )
    expected = {(i,) for i in range(1, next_id)}
    return program, expected, len(edges)


QUERY = "t(0, Z)"


def sequential_baseline(program, expected):
    """8 cold single-query sessions, one after another (build + query)."""
    build_secs = 0.0
    query_secs = 0.0
    for _ in range(N_CLIENTS):
        start = time.perf_counter()
        session = Session(program)
        build_secs += time.perf_counter() - start
        start = time.perf_counter()
        answers = session.query(QUERY)
        query_secs += time.perf_counter() - start
        assert answers == expected
    return build_secs, query_secs


def concurrent_cold_service(program, expected):
    """The same 8 queries, fired at once against a cold shared server."""
    shared = SharedSession(program)
    config = ServerConfig(
        max_concurrent=N_CLIENTS, max_queue=N_CLIENTS, default_deadline=300.0
    )
    barrier = threading.Barrier(N_CLIENTS + 1)
    replies = [None] * N_CLIENTS
    errors = []

    def client(i, port):
        try:
            with ServiceClient(port=port, timeout=300.0) as c:
                barrier.wait()
                replies[i] = c.query(QUERY, timeout=300.0)
        except Exception as exc:  # propagate to the main thread
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    with ServerThread(shared, config) as port:
        threads = [
            threading.Thread(target=client, args=(i, port)) for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        barrier.wait()  # all clients connected: start the clock
        start = time.perf_counter()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
        if errors:
            raise errors[0]
        stats = shared.stats()
    for reply in replies:
        assert reply is not None and set(reply.answers) == expected
    return wall, replies, stats


def warm_mixed_load(program, expected, requests_per_client=25):
    """Warm-cache mixed load over four query variants; client latencies."""
    shared = SharedSession(program)
    config = ServerConfig(
        max_concurrent=N_CLIENTS, max_queue=4 * N_CLIENTS, default_deadline=300.0
    )
    queries = ["t(0, Z)", "t(0, W)", "t(1, Z)", "t(2, Y)"]
    latencies: list[float] = []
    lat_lock = threading.Lock()
    errors = []

    def client(i, port):
        mine = []
        try:
            with ServiceClient(port=port, timeout=300.0) as c:
                for n in range(requests_per_client):
                    q = queries[(i + n) % len(queries)]
                    start = time.perf_counter()
                    c.query(q, timeout=300.0)
                    mine.append(time.perf_counter() - start)
        except Exception as exc:
            errors.append(exc)
        with lat_lock:
            latencies.extend(mine)

    with ServerThread(shared, config) as port:
        # Prime the graph cache so the phase measures warm serving.
        with ServiceClient(port=port, timeout=300.0) as c:
            for q in queries:
                c.query(q, timeout=300.0)
        threads = [
            threading.Thread(target=client, args=(i, port)) for i in range(N_CLIENTS)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
        if errors:
            raise errors[0]
        with ServiceClient(port=port, timeout=300.0) as c:
            server_stats = c.stats()
    total = N_CLIENTS * requests_per_client
    quantiles = statistics.quantiles(latencies, n=100)
    return {
        "requests": total,
        "wall": wall,
        "throughput": total / wall,
        "p50": quantiles[49],
        "p99": quantiles[98],
        "server": server_stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller tree and fewer warm requests (CI-sized)",
    )
    args = parser.parse_args(argv)
    branch, depth, per_client = (7, 3, 5) if args.quick else (27, 3, 25)

    program, expected, n_facts = tc_bushy_workload(branch, depth)
    if not args.quick:
        assert n_facts >= 20_000
    print(f"workload: {n_facts}-fact bushy TC, {len(expected)} answers")

    build_secs, query_secs = sequential_baseline(program, expected)
    seq_total = build_secs + query_secs
    seq_throughput = N_CLIENTS / seq_total

    svc_wall, replies, svc_stats = concurrent_cold_service(program, expected)
    svc_throughput = N_CLIENTS / svc_wall
    coalesced = sum(1 for r in replies if r.coalesced)
    shared_evals = svc_stats["shared_evaluations"]

    factor = ratio(svc_throughput, seq_throughput)
    factor_query_only = ratio(svc_throughput, N_CLIENTS / query_secs)
    emit_table(
        f"cold-cache: {N_CLIENTS} clients, {n_facts}-fact TC",
        ["architecture", "wall s", "qps", "coalesced", "shared evals"],
        [
            (
                "sequential sessions",
                f"{seq_total:.2f}",
                f"{seq_throughput:.2f}",
                "-",
                "-",
            ),
            (
                "concurrent service",
                f"{svc_wall:.2f}",
                f"{svc_throughput:.2f}",
                coalesced,
                shared_evals,
            ),
        ],
    )
    emit_table(
        "headline factors",
        ["comparison", "factor"],
        [
            ("service vs sequential (build+query)", f"{factor:.1f}x"),
            ("service vs sequential (query only)", f"{factor_query_only:.1f}x"),
        ],
    )
    emit_json(
        {
            "bench": "service_cold_coalesce",
            "workload": f"tc-bushy-{n_facts}",
            "runtime": "service",
            "knobs": {"clients": N_CLIENTS, "quick": args.quick},
            "seconds": round(svc_wall, 4),
            "sequential_seconds": round(seq_total, 4),
            "sequential_query_seconds": round(query_secs, 4),
            "throughput_factor": round(factor, 2),
            "coalesced_replies": coalesced,
            "shared_evaluations": shared_evals,
            "answers": len(expected),
        },
        path=BENCH_PR5_JSON_PATH,
    )

    warm = warm_mixed_load(program, expected, per_client)
    histograms = warm["server"]["metrics"]["histograms"]
    emit_table(
        f"warm mixed load: {warm['requests']} requests, {N_CLIENTS} clients, 4 variants",
        ["metric", "value"],
        [
            ("throughput", f"{warm['throughput']:.1f} qps"),
            ("p50 latency", f"{warm['p50'] * 1e3:.1f} ms"),
            ("p99 latency", f"{warm['p99'] * 1e3:.1f} ms"),
            (
                "server queue wait p99",
                f"{histograms['queue_wait_seconds']['p99'] * 1e3:.1f} ms",
            ),
            (
                "server eval p50",
                f"{histograms['evaluation_seconds']['p50'] * 1e3:.1f} ms",
            ),
        ],
    )
    emit_json(
        {
            "bench": "service_warm_load",
            "workload": f"tc-bushy-{n_facts}",
            "runtime": "service",
            "knobs": {"clients": N_CLIENTS, "variants": 4, "quick": args.quick},
            "seconds": round(warm["wall"], 4),
            "requests": warm["requests"],
            "throughput_qps": round(warm["throughput"], 2),
            "p50_seconds": round(warm["p50"], 5),
            "p99_seconds": round(warm["p99"], 5),
        },
        path=BENCH_PR5_JSON_PATH,
    )

    # The acceptance bar: ≥3x throughput with measurable deduplication.
    failures = []
    if shared_evals < 1:
        failures.append("coalescing never shared an evaluation")
    if not args.quick and factor < 3.0:
        failures.append(f"service only {factor:.1f}x over sequential sessions")
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print(
        f"ok: {factor:.1f}x throughput, {coalesced}/{N_CLIENTS} requests coalesced "
        f"onto {N_CLIENTS - coalesced} evaluation(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
