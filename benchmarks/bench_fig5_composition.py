"""Experiment fig5 — qual tree composition under resolution (Theorem 4.2).

Repeatedly resolves a monotone rule on its recursive leaf subgoal — the §4.2
scenario in which the monotone flow property "might be transmitted to all
recursive extensions" — verifying the qual-tree property at every depth and
benchmarking the composition.
"""

import pytest

from repro.core.monotone import (
    compose_qual_trees,
    evaluation_hypergraph,
    has_monotone_flow,
    recursive_leaf_subgoals,
)
from repro.core.parser import parse_rule
from repro.core.terms import FreshVariables
from repro.workloads import adorned_head_df

from _support import emit_table

BASE = "p(X, Z) <- a(X, Y), p(Y, Z)."


def compose_depth(depth: int):
    fresh = FreshVariables()
    rule = parse_rule(BASE)
    head = adorned_head_df(rule)
    base = parse_rule(BASE)
    trees = []
    for _ in range(depth):
        (leaf,) = recursive_leaf_subgoals(rule, head)
        extension, tree = compose_qual_trees(rule, head, leaf, base, fresh)
        rule, head = extension.rule, extension.head
        trees.append(tree)
    return rule, head, trees


def test_fig5_composition_transmits_monotone_flow():
    rows = []
    for depth in (1, 2, 4, 8):
        rule, head, trees = compose_depth(depth)
        ok = all(t.satisfies_qual_tree_property() for t in trees)
        matches = dict(trees[-1].nodes) == dict(
            evaluation_hypergraph(rule, head).edges
        )
        rows.append((depth, len(rule.body), ok, matches, has_monotone_flow(rule, head)))
    emit_table(
        "Fig 5 / Thm 4.2: recursive qual-tree composition",
        ["depth", "subgoals", "qual-tree property", "matches hypergraph", "monotone"],
        rows,
    )
    assert all(row[2] and row[3] and row[4] for row in rows)


def test_fig5_composed_tree_equals_direct_gyo():
    # The composed tree must certify acyclicity exactly when direct GYO does.
    rule, head, trees = compose_depth(3)
    assert evaluation_hypergraph(rule, head).is_acyclic()
    assert trees[-1].satisfies_qual_tree_property()


@pytest.mark.benchmark(group="fig5-composition")
@pytest.mark.parametrize("depth", [4, 16])
def test_bench_composition(benchmark, depth):
    rule, head, trees = benchmark(compose_depth, depth)
    # The base rule has 2 subgoals; each composition adds one more.
    assert len(rule.body) == depth + 2
