"""CI service smoke: mixed read/write load, clean drain, zero leaks.

Starts the query server on an ephemeral port over a small ancestor
base, drives a short mixed load (identical + distinct queries from
several client threads, interleaved ``add_facts``/``add_rules``, a
malformed request, an unknown op, a deadline'd ask), asks the server to
drain via the ``shutdown`` op, and then asserts the conditions CI is
really there to check:

* every answer matches a serial oracle session;
* the server drains *cleanly* — the server thread joins, no evaluation
  is severed mid-flight;
* zero leaked threads and zero leaked child processes after drain
  (polled briefly: executor threads unwind asynchronously).

Exits non-zero on any violation.  Budget: well under a CI minute.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import sys
import threading
import time

from repro.service import (
    ServerConfig,
    ServerThread,
    ServiceClient,
    ServiceClientError,
    SharedSession,
)
from repro.session import Session

BASE = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, U), anc(U, Y).
par(ann, bob).  par(bob, cal).  par(cal, dee).  par(dee, eve).
par(ann, abe).  par(abe, ada).
"""

EXTRA_FACTS = "par(eve, fay).  par(fay, gus)."
EXTRA_RULES = "desc(X, Y) <- anc(Y, X)."

QUERIES = ["anc(ann, Z)", "anc(bob, Z)", "anc(ann, W)", "anc(abe, Q)"]


def oracle_answers():
    """Serial single-threaded session over the *final* base: the oracle."""
    session = Session(BASE)
    session.add_facts(EXTRA_FACTS)
    session.add_rules(EXTRA_RULES)
    return {q: session.query(q) for q in QUERIES + ["desc(gus, ann)"]}


def client_load(port: int, index: int, failures: list) -> None:
    """One client thread: a few queries, its share of the writes."""
    try:
        with ServiceClient(port=port, timeout=30.0) as client:
            for round_ in range(3):
                query = QUERIES[(index + round_) % len(QUERIES)]
                reply = client.query(query, timeout=30.0)
                if not reply.answers:
                    failures.append(f"client {index}: empty answers for {query}")
            if index == 0:
                client.add_facts(EXTRA_FACTS)
            if index == 1:
                # May race client 0's add_facts; both orders are valid.
                client.add_rules(EXTRA_RULES)
            client.ask("anc(ann, eve)", timeout=30.0)
    except Exception as exc:  # noqa: BLE001 - report, don't hang CI
        failures.append(f"client {index}: {type(exc).__name__}: {exc}")


def main() -> int:
    failures: list[str] = []
    threads_before = threading.active_count()
    shared = SharedSession(BASE)
    server = ServerThread(
        shared,
        ServerConfig(max_concurrent=3, max_queue=8, default_deadline=20.0),
    )
    port = server.start()

    # Protocol edge cases must answer typed errors without wedging anyone.
    raw = socket.create_connection(("127.0.0.1", port), timeout=10)
    raw_file = raw.makefile("rwb")
    raw_file.write(b"this is not json\n")
    raw_file.flush()
    bad = json.loads(raw_file.readline())
    assert bad["error"]["type"] == "bad_request", bad
    raw_file.write(b'{"id": 1, "op": "frobnicate"}\n')
    raw_file.flush()
    unknown = json.loads(raw_file.readline())
    assert unknown["error"]["type"] == "unknown_op", unknown
    raw.close()

    # Mixed read/write load from several concurrent clients.
    workers = [
        threading.Thread(target=client_load, args=(port, i, failures))
        for i in range(4)
    ]
    for t in workers:
        t.start()
    for t in workers:
        t.join(60)
        if t.is_alive():
            failures.append("client thread wedged")

    # Post-load verification against the serial oracle.
    oracle = oracle_answers()
    with ServiceClient(port=port, timeout=30.0) as client:
        for query, expected in oracle.items():
            if query.startswith("desc"):
                if not client.ask(query):
                    failures.append(f"{query}: expected true after add_rules")
            else:
                got = set(client.query(query).answers)
                if got != expected:
                    failures.append(f"{query}: {got} != oracle {expected}")
        stats = client.stats()
        counters = stats["metrics"]["counters"]
        if counters["queries_total"] < 12:
            failures.append(f"suspicious queries_total {counters['queries_total']}")
        if stats["session"]["writes"] != 2:
            failures.append(f"expected 2 writes, saw {stats['session']['writes']}")

    # Graceful drain via the protocol, then the leak audit.
    try:
        ServiceClient(port=port).shutdown()
    except ServiceClientError as exc:
        failures.append(f"shutdown op failed: {exc}")
    server._thread.join(30)
    if server._thread.is_alive():
        failures.append("server thread did not drain")

    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        leaked_threads = threading.active_count() - threads_before
        leaked_children = multiprocessing.active_children()
        if leaked_threads <= 0 and not leaked_children:
            break
        time.sleep(0.1)
    else:
        failures.append(
            f"leaked {leaked_threads} thread(s), "
            f"{len(leaked_children)} child process(es) after drain"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("service smoke ok: mixed load served, clean drain, zero leaks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
