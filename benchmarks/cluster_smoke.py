"""CI cluster smoke: 20k-fact TC over localhost TCP, with a mid-run SIGKILL.

The acceptance scenario for the multi-host shard runtime, end to end:

1. boot a 2-worker localhost :class:`~repro.cluster.harness.ClusterHarness`
   (manager thread + spawned worker processes over loopback TCP — every
   wire byte, handshake, and heartbeat is the real deployment path);
2. evaluate a ≥20k-fact bushy transitive closure and assert the answers
   are byte-identical to the in-process simulator's **and** the logical
   tuple-row total matches exactly (per-stream dedup makes that slice of
   the accounting runtime-invariant);
3. re-run the query while a timer SIGKILLs one worker mid-flight, and
   assert the supervised whole-query retry masks the loss: same answers,
   zero caller-visible errors, a crash verdict in the failure log.

Exits non-zero on any failed check.  Usage::

    PYTHONPATH=src python benchmarks/cluster_smoke.py
"""

from __future__ import annotations

import sys
import threading
import time

from _support import BENCH_PR10_JSON_PATH, emit_json
from repro.cluster import ClusterHarness, evaluate_cluster
from repro.network.engine import evaluate
from repro.workloads import facts_from_tables, left_recursive_tc_program


def tc_20k_workload():
    """≥20k-fact TC whose reachable part is a bushy binary tree.

    Same shape as ``bench_runtimes.tc_20k_workload``: a complete binary
    tree (2047 nodes) keeps many tuple requests in flight so cross-shard
    batches fill; ~18k disjoint noise edges are real facts the EDB shards
    must index and skip.
    """
    tree = [(i, 2 * i + 1) for i in range(1023)] + [
        (i, 2 * i + 2) for i in range(1023)
    ]
    noise = [(100_000 + 2 * i, 100_001 + 2 * i) for i in range(18_000)]
    program = left_recursive_tc_program(0).with_facts(
        facts_from_tables({"e": tree + noise})
    )
    expected = {(i,) for i in range(1, 2047)}
    return program, expected, len(tree) + len(noise)


def check(condition: bool, label: str, failures: list) -> None:
    print(f"  {'ok ' if condition else 'FAIL'} {label}")
    if not condition:
        failures.append(label)


def main() -> int:
    program, expected, n_facts = tc_20k_workload()
    failures: list = []

    print(f"workload: {n_facts}-fact transitive closure, "
          f"{len(expected)} expected answers")
    sim = evaluate(program)
    sim_rows = sim.stats.by_kind.get("TupleMessage", 0) + sim.stats.tuple_set_rows
    check(sim.answers == expected, "simulator matches the oracle", failures)

    with ClusterHarness(workers=2) as harness:
        client = harness.client()

        # -- Phase 1: clean run — answers and logical accounting parity.
        start = time.perf_counter()
        clean = evaluate_cluster(program, client=client, timeout=300)
        t_clean = time.perf_counter() - start
        print(f"phase 1: clean cluster run in {t_clean:.2f}s "
              f"({clean.bytes_on_wire} wire bytes, "
              f"{clean.cross_batches} cross-shard batches)")
        check(clean.answers == expected, "cluster answers byte-identical", failures)
        check(
            clean.logical_tuple_rows == sim_rows,
            f"logical tuple rows match exactly "
            f"({clean.logical_tuple_rows} == {sim_rows})",
            failures,
        )
        check(clean.workers == 2, "both workers served the job", failures)
        emit_json(
            {
                "bench": "cluster_smoke",
                "workload": f"tc-binary-{n_facts}",
                "runtime": "cluster",
                "phase": "clean",
                "seconds": round(t_clean, 4),
                "logical_tuple_rows": clean.logical_tuple_rows,
                "wire_bytes": clean.bytes_on_wire,
                "answers": len(clean.answers),
            },
            path=BENCH_PR10_JSON_PATH,
        )

        # -- Phase 2: SIGKILL one worker mid-query; retry must mask it.
        kill_delay = max(0.2, min(2.0, t_clean / 4.0))
        killer = threading.Timer(kill_delay, harness.kill_worker, args=(1,))
        killer.start()
        start = time.perf_counter()
        try:
            survived = evaluate_cluster(
                program, client=client, retry=3, timeout=300
            )
        finally:
            killer.cancel()
        t_survived = time.perf_counter() - start
        print(f"phase 2: SIGKILL at {kill_delay:.2f}s, query finished in "
              f"{t_survived:.2f}s after {survived.attempts} attempt(s)")
        check(
            survived.answers == expected,
            "answers identical after the mid-run SIGKILL",
            failures,
        )
        check(
            survived.attempts >= 2,
            "worker loss drew a supervised retry "
            f"(attempts={survived.attempts})",
            failures,
        )
        check(
            any("WorkerCrashError" in line for line in survived.failure_log),
            "failure log records the crash verdict",
            failures,
        )
        check(not survived.degraded, "no fallback needed", failures)
        emit_json(
            {
                "bench": "cluster_smoke",
                "workload": f"tc-binary-{n_facts}",
                "runtime": "cluster",
                "phase": "worker-sigkill",
                "seconds": round(t_survived, 4),
                "attempts": survived.attempts,
                "answers": len(survived.answers),
            },
            path=BENCH_PR10_JSON_PATH,
        )

    if failures:
        print(f"CLUSTER SMOKE FAILURES: {failures}", file=sys.stderr)
        return 1
    print("cluster smoke ok: parity, exact logical accounting, and "
          "SIGKILL-survival all hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
