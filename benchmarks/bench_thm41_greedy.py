"""Experiment thm41 — Theorem 4.1: qual-tree SIPs are greedy.

Generates a family of monotone rules (random acyclic hyperedge structures
rendered as rules), derives each one's qual-tree SIP, and checks greediness
(Definition 2.4).  The reported series: rules tested, monotone fraction,
and greedy fraction among qual-tree SIPs — which the theorem says is 100%.
"""

import itertools
import random

import pytest

from repro.core.adornment import AdornedAtom, DYNAMIC, FREE
from repro.core.atoms import Atom
from repro.core.monotone import has_monotone_flow, qual_tree_sip
from repro.core.rules import Rule
from repro.core.sips import greedy_sip, is_greedy
from repro.core.terms import Variable

from _support import emit_table


def random_rule(rng: random.Random, subgoals: int) -> tuple[Rule, AdornedAtom]:
    """A random safe rule grown as a connected chain of shared variables."""
    variables = [Variable(f"V{i}") for i in range(subgoals + 2)]
    x, z = variables[0], variables[-1]
    body = []
    produced = [x]
    for i in range(subgoals):
        shared = rng.choice(produced)
        fresh = variables[i + 1]
        arity = rng.choice([2, 2, 3])
        args = [shared, fresh]
        if arity == 3:
            args.append(rng.choice(produced))
        body.append(Atom(f"e{i}", tuple(args)))
        produced.append(fresh)
    body.append(Atom("last", (produced[-1], z)))
    rule = Rule(Atom("p", (x, z)), tuple(body))
    head = AdornedAtom(rule.head, (DYNAMIC, FREE))
    return rule, head


def test_thm41_generated_rules():
    rng = random.Random(1986)
    totals = {"rules": 0, "monotone": 0, "greedy": 0}
    rows = []
    for subgoals in (2, 3, 4, 5):
        rules = 0
        monotone = 0
        greedy_count = 0
        for _ in range(50):
            rule, head = random_rule(rng, subgoals)
            rules += 1
            if not has_monotone_flow(rule, head):
                continue
            monotone += 1
            sip = qual_tree_sip(rule, head)
            assert sip is not None
            if is_greedy(sip):
                greedy_count += 1
        rows.append((subgoals, rules, monotone, greedy_count))
        totals["rules"] += rules
        totals["monotone"] += monotone
        totals["greedy"] += greedy_count
    emit_table(
        "Theorem 4.1: qual-tree SIP greediness over generated monotone rules",
        ["subgoals", "rules", "monotone", "greedy qual-tree SIPs"],
        rows,
    )
    # The theorem: every qual-tree SIP is greedy.
    assert totals["greedy"] == totals["monotone"]
    assert totals["monotone"] > 0


def test_thm41_exhaustive_small_rules():
    # All rules over 3 binary subgoals with chained variables.
    X, A, B, Z = (Variable(n) for n in "XABZ")
    for perm in itertools.permutations(
        [Atom("a", (X, A)), Atom("b", (A, B)), Atom("c", (B, Z))]
    ):
        rule = Rule(Atom("p", (X, Z)), perm)
        head = AdornedAtom(rule.head, (DYNAMIC, FREE))
        if has_monotone_flow(rule, head):
            sip = qual_tree_sip(rule, head)
            assert sip is not None and is_greedy(sip)


@pytest.mark.benchmark(group="thm41-sips")
@pytest.mark.parametrize("strategy", ["greedy", "qual-tree"])
def test_bench_sip_construction(benchmark, strategy):
    # Use a generated rule known to be monotone so both strategies apply.
    rng = random.Random(1986)
    rule, head = random_rule(rng, 6)
    while not has_monotone_flow(rule, head):
        rule, head = random_rule(rng, 6)
    if strategy == "greedy":
        sip = benchmark(greedy_sip, rule, head)
    else:
        sip = benchmark(qual_tree_sip, rule, head)
    assert sip is not None
