"""Experiment claim-nonlinear — §1.2/§3: nonlinear recursion and left
recursion both terminate and answer correctly.

"In particular, this method handles nonlinear recursion, in which a goal
depends recursively on two or more of its subgoals in the same rule"; and
"the method is certain to terminate, avoiding the well-known 'left
recursion' problems of strictly top-down methods."

The series: messages / tuples / protocol waves for nonlinear TC, the
left-recursive TC variant, and same-generation, against semi-naive's full
model; all validated against the oracle.
"""

import pytest

from repro.baselines import naive, seminaive
from repro.network.engine import evaluate
from repro.workloads import (
    chain_edges,
    cycle_edges,
    facts_from_tables,
    left_recursive_tc_program,
    nonlinear_tc_program,
    random_digraph_edges,
    same_generation_program,
    tree_parent_edges,
)

from _support import emit_table


def cases():
    edges = random_digraph_edges(12, 30, seed=6) + [(0, 1)]
    return [
        ("nonlinear TC / random", nonlinear_tc_program(0).with_facts(
            facts_from_tables({"e": edges}))),
        ("nonlinear TC / cycle", nonlinear_tc_program(0).with_facts(
            facts_from_tables({"e": cycle_edges(10)}))),
        ("left-recursive TC / chain", left_recursive_tc_program(0).with_facts(
            facts_from_tables({"e": chain_edges(14)}))),
        ("left-recursive TC / cycle", left_recursive_tc_program(0).with_facts(
            facts_from_tables({"e": cycle_edges(10)}))),
        ("same-generation / tree", same_generation_program(7).with_facts(
            facts_from_tables({"par": tree_parent_edges(4, 2)}))),
    ]


def test_claim_nonlinear_table():
    rows = []
    for name, program in cases():
        oracle = naive.goal_answers(program)
        result = evaluate(program)
        semi = seminaive.evaluate(program)
        assert result.answers == oracle == semi.answers()
        assert result.completed and not result.protocol_violations
        rows.append(
            (
                name,
                len(oracle),
                result.computation_messages,
                result.protocol_messages,
                result.tuples_stored,
                semi.idb_tuples,
                "nonlinear" if not program.is_linear() else "linear",
            )
        )
    emit_table(
        "claim-nonlinear: recursion shapes through the message engine",
        ["case", "answers", "comp msgs", "proto msgs",
         "engine tuples", "full model", "recursion"],
        rows,
    )
    # Nonlinear cases really are nonlinear; everything terminated (we got
    # here) and matched the oracle (asserted above).
    assert any(row[6] == "nonlinear" for row in rows)


def test_claim_left_recursion_graph_is_finite():
    # The rule/goal graph itself must close the left-recursive cycle.
    from repro.core.rulegoal import build_rule_goal_graph

    program = left_recursive_tc_program(0)
    graph = build_rule_goal_graph(program)
    assert graph.size() < 40
    assert graph.strong_components()


@pytest.mark.benchmark(group="claim-nonlinear")
@pytest.mark.parametrize("case", ["nonlinear", "left-recursive", "same-gen"])
def test_bench_recursion_shapes(benchmark, case):
    if case == "nonlinear":
        program = nonlinear_tc_program(0).with_facts(
            facts_from_tables({"e": cycle_edges(8)})
        )
    elif case == "left-recursive":
        program = left_recursive_tc_program(0).with_facts(
            facts_from_tables({"e": chain_edges(12)})
        )
    else:
        program = same_generation_program(3).with_facts(
            facts_from_tables({"par": tree_parent_edges(3, 2)})
        )
    result = benchmark(evaluate, program)
    assert result.completed
