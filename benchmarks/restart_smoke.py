"""CI warm-restart smoke: hard-kill the server, restart, identical answers.

The durability contract under test, end to end through the real CLI:

1. ``repro serve <file> --data-dir D`` boots fresh (bootstrap snapshot);
2. a client adds facts and rules, then records the answers to a set of
   queries — every one of these writes was *acknowledged*, so every one
   must survive;
3. the server is **hard-killed** (SIGKILL: no drain, no atexit, the
   worst case short of power loss);
4. a second ``repro serve`` over the same ``--data-dir`` replays the
   snapshot + fact log and must answer **identically** without any
   re-ingest — including on queries whose answers depend on the logged
   writes;
5. finally the restarted server gets SIGTERM and must exit 0 via the
   graceful drain path ("drained and stopped").

Exits non-zero on any violation.  Budget: a few CI seconds.

Usage::

    PYTHONPATH=src python benchmarks/restart_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BASE_PROGRAM = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, U), anc(U, Y).
par(ann, bob).  par(bob, cal).  par(cal, dee).
"""

EXTRA_FACTS = "par(dee, eve).  par(eve, fay)."
EXTRA_RULES = "desc(X, Y) <- anc(Y, X)."

QUERIES = ["anc(ann, Z)", "anc(dee, Z)", "desc(fay, ann)"]

SERVING_RE = re.compile(r"^serving .* on (\S+):(\d+) ", re.MULTILINE)


def start_server(kb_path: str, data_dir: str) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve --port 0 --data-dir`` and parse the bound port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            kb_path,
            "--port",
            "0",
            "--data-dir",
            data_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    banner = []
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        banner.append(line)
        match = SERVING_RE.search(line)
        if match:
            return proc, int(match.group(2))
    proc.kill()
    raise RuntimeError(f"server never announced its port; output: {''.join(banner)}")


def main() -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.service import ServiceClient

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        kb_path = os.path.join(tmp, "base.dl")
        with open(kb_path, "w") as handle:
            handle.write(BASE_PROGRAM)
        data_dir = os.path.join(tmp, "state")

        # -- Life 1: boot, write, record answers, hard-kill. ----------
        proc, port = start_server(kb_path, data_dir)
        try:
            with ServiceClient(port=port, timeout=30.0) as client:
                client.add_facts(EXTRA_FACTS)
                client.add_rules(EXTRA_RULES)
                before = {q: client.query(q, timeout=30.0).answers for q in QUERIES}
                stats = client.stats()
                if stats["session"]["persistence"]["appends"] != 2:
                    failures.append(
                        "expected 2 log appends, saw "
                        f"{stats['session']['persistence']['appends']}"
                    )
        finally:
            proc.kill()  # SIGKILL: no drain, no flush beyond the log's fsync
            proc.wait(30)
        if not before.get("anc(ann, Z)"):
            failures.append("life 1 produced no answers to compare against")
        if ("eve",) not in before.get("anc(ann, Z)", set()):
            failures.append("life 1 never saw the added facts")

        # -- Life 2: restart over the same data-dir, compare. ---------
        proc, port = start_server(kb_path, data_dir)
        try:
            with ServiceClient(port=port, timeout=30.0) as client:
                for query, expected in before.items():
                    got = client.query(query, timeout=30.0).answers
                    if got != expected:
                        failures.append(
                            f"restart answer drift on {query!r}: "
                            f"{sorted(got)} != {sorted(expected)}"
                        )
                replay = client.stats()["session"]["persistence"]["replay"]
                if replay["bootstrapped"]:
                    failures.append("restart bootstrapped instead of replaying")
                if replay["records_replayed"] != 2:
                    failures.append(
                        f"expected 2 replayed records, saw {replay['records_replayed']}"
                    )

            # -- Graceful path: SIGTERM must drain and exit 0. --------
            proc.send_signal(signal.SIGTERM)
            try:
                code = proc.wait(30)
            except subprocess.TimeoutExpired:
                failures.append("SIGTERM did not stop the server within 30s")
                proc.kill()
                code = proc.wait(10)
            output = proc.stdout.read()
            if code != 0:
                failures.append(f"SIGTERM exit code {code}, expected 0: {output}")
            if "drained and stopped" not in output:
                failures.append(f"graceful-drain banner missing from: {output!r}")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(10)

    if failures:
        print("FAIL:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print(
        "ok: hard-killed server restarted from --data-dir with identical "
        f"answers on {len(QUERIES)} queries (2 records replayed); "
        "SIGTERM drained cleanly"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
