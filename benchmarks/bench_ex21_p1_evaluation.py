"""Experiment ex21 — Example 2.1: evaluating program P1 end to end.

The paper's running example, evaluated over generated EDBs by every engine
in the package.  The series reported: distinct tuples materialized, messages
(for the distributed engines), and derivation counts, for

* the message-passing engine with greedy sideways information passing,
* the same engine with no sideways passing (all-free; the McKay–Shapiro-
  style stand-in that computes intermediate relations in full),
* semi-naive and naive bottom-up (entire minimum model), and
* tabled top-down.

Shape assertion: greedy materializes no more than all-free, and (relevance!)
no more than the full bottom-up model's tuple count.
"""

import pytest

from repro.baselines import naive, seminaive, topdown
from repro.core.sips import all_free_sip
from repro.network.engine import evaluate
from repro.workloads import facts_from_tables, p1_tables, program_p1

from _support import emit_table, ratio


def p1_instance(n: int, seed: int = 5):
    return program_p1().with_facts(facts_from_tables(p1_tables(n, 0.4, seed)))


def test_ex21_engine_comparison_table():
    rows = []
    for n in (10, 20, 40):
        program = p1_instance(n)
        oracle = naive.evaluate(program)
        greedy = evaluate(program)
        free = evaluate(program, sip_factory=all_free_sip)
        semi = seminaive.evaluate(program)
        top = topdown.evaluate(program)
        assert greedy.answers == oracle.answers()
        assert free.answers == oracle.answers()
        assert semi.answers() == oracle.answers()
        assert top.answers() == oracle.answers()
        rows.append(
            (
                n,
                len(oracle.answers()),
                greedy.tuples_stored,
                free.tuples_stored,
                oracle.idb_tuples,
                semi.derivations,
                top.relevant_tuples(),
                greedy.computation_messages,
            )
        )
        # Sideways restriction never stores more than the no-SIP variant.
        assert greedy.tuples_stored <= free.tuples_stored
    emit_table(
        "Example 2.1: P1 over random EDBs — work by evaluator",
        [
            "n",
            "answers",
            "greedy tuples",
            "all-free tuples",
            "full model (naive)",
            "semi-naive derivs",
            "topdown tuples",
            "greedy comp msgs",
        ],
        rows,
    )


def test_ex21_relevance_restriction_factor():
    # Add a large second component unreachable from the query constant and
    # compare each method's sensitivity to it.
    tables = p1_tables(12, 0.4, seed=9)
    near_program = program_p1().with_facts(facts_from_tables(tables))
    far = [(1000 + i, 1001 + i) for i in range(60)]
    far_tables = dict(tables)
    far_tables["r"] = tables["r"] + far
    far_program = program_p1().with_facts(facts_from_tables(far_tables))

    greedy_near = evaluate(near_program)
    greedy_far = evaluate(far_program)
    oracle_near = naive.evaluate(near_program)
    oracle_far = naive.evaluate(far_program)
    assert greedy_far.answers == oracle_far.answers() == greedy_near.answers

    emit_table(
        "Example 2.1: sensitivity to a large unreachable EDB region",
        ["method", "tuples (reachable only)", "tuples (+60 far edges)", "growth"],
        [
            ("greedy engine", greedy_near.tuples_stored, greedy_far.tuples_stored,
             greedy_far.tuples_stored - greedy_near.tuples_stored),
            ("full model (naive)", oracle_near.idb_tuples, oracle_far.idb_tuples,
             oracle_far.idb_tuples - oracle_near.idb_tuples),
        ],
    )
    # The "d"-restricted engine never touches the far region; the full
    # bottom-up model derives a p tuple for every far edge.
    assert greedy_far.tuples_stored == greedy_near.tuples_stored
    assert oracle_far.idb_tuples >= oracle_near.idb_tuples + 60


@pytest.mark.benchmark(group="ex21-p1")
@pytest.mark.parametrize("engine", ["greedy", "all-free", "seminaive"])
def test_bench_p1_engines(benchmark, engine):
    program = p1_instance(15)
    if engine == "greedy":
        result = benchmark(evaluate, program)
        assert result.completed
    elif engine == "all-free":
        result = benchmark(evaluate, program, all_free_sip)
        assert result.completed
    else:
        result = benchmark(seminaive.evaluate, program)
        assert result.answers() is not None
