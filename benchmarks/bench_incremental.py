"""Incremental view maintenance under a write/repeat-query mix (PR 7).

The tentpole claim: with warm materializations, the time from a
committed ``add_facts`` to a *fresh* answer (the semi-naive delta
refresh) beats the invalidate-and-recompute baseline (a full fixpoint
re-derivation) by >= 10x on the 20k-fact bushy TC workload, with
answers provably identical to a cold session at every round.

Both configurations run the same schedule against a
:class:`~repro.service.SharedSession`: R rounds of {one small write
batch extending the reachable set, the first post-write query (must
reflect the write), then a tail of repeat queries}.  With
``materialize=True`` the write delta-refreshes the warm network and
re-stores the answer set under the new ``db_version``; the baseline
purges and pays a full re-evaluation.  Records land in
``BENCH_PR7.json`` at the repo root (the `_support` convention).
"""

from __future__ import annotations

import argparse
import sys
import time

sys.path.insert(0, "benchmarks")
sys.path.insert(0, "src")

from _support import BENCH_PR7_JSON_PATH, emit_json, emit_table, ratio
from bench_service import tc_bushy_workload

from repro.service import SharedSession
from repro.session import Session
from repro.workloads import facts_from_tables

QUERY = "t(0, Z)"
CHAIN = 4  # new edges per write batch (a chain hung off the tree)
REPEATS = 6  # repeat queries after the first post-write one


def write_schedule(n_facts: int, rounds: int) -> list[list[tuple[int, int]]]:
    """Per-round delta batches: chains attached under the deepest node.

    Node ids ``1..n_facts`` exist (uniform tree); each round grafts a
    fresh ``CHAIN``-edge path onto the previous round's tip, so every
    batch grows the reachable-from-0 answer set by exactly ``CHAIN``.
    """
    tip, next_id = n_facts, n_facts + 1
    batches = []
    for _ in range(rounds):
        batch = []
        for _ in range(CHAIN):
            batch.append((tip, next_id))
            tip = next_id
            next_id += 1
        batches.append(batch)
    return batches


def run_mix(program, batches, materialize: bool):
    """One full schedule; returns per-round timings + final answers."""
    shared = SharedSession(
        session=Session(program), materialize=materialize
    )
    start = time.perf_counter()
    shared.query(QUERY)  # initial fixpoint (materializes when enabled)
    initial_secs = time.perf_counter() - start
    fresh_secs = []  # committed write -> first fresh answer
    repeat_secs = []
    per_round_answers = []
    for batch in batches:
        start = time.perf_counter()
        shared.add_facts(facts_from_tables({"e": batch}))
        outcome = shared.query_detailed(QUERY)
        fresh_secs.append(time.perf_counter() - start)
        per_round_answers.append(frozenset(outcome.answers))
        for _ in range(REPEATS):
            start = time.perf_counter()
            shared.query_detailed(QUERY)
            repeat_secs.append(time.perf_counter() - start)
    return {
        "initial": initial_secs,
        "fresh": fresh_secs,
        "repeat": repeat_secs,
        "answers": per_round_answers,
        "stats": shared.stats(),
    }


def mean(xs):
    return sum(xs) / len(xs) if xs else 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller tree and fewer rounds (CI-sized)",
    )
    args = parser.parse_args(argv)
    branch, depth, rounds = (7, 3, 4) if args.quick else (27, 3, 6)

    program, _, n_facts = tc_bushy_workload(branch, depth)
    batches = write_schedule(n_facts, rounds)
    print(
        f"workload: {n_facts}-fact bushy TC, {rounds} write rounds of "
        f"{CHAIN} edges, {REPEATS} repeat queries per round"
    )

    warm = run_mix(program, batches, materialize=True)
    cold = run_mix(program, batches, materialize=False)

    # Differential check: every round's answers identical across the
    # two serving modes AND a from-scratch session over the grown base.
    parity = warm["answers"] == cold["answers"]
    committed = []
    for batch, warm_round in zip(batches, warm["answers"]):
        committed.extend(batch)
        scratch = Session(program)
        scratch.add_facts(facts_from_tables({"e": committed}))
        if frozenset(scratch.query(QUERY)) != warm_round:
            parity = False
            break

    speedup = ratio(mean(cold["fresh"]), mean(warm["fresh"]))
    emit_table(
        "Write -> fresh answer: semi-naive refresh vs full re-evaluation",
        ["mode", "initial s", "mean fresh s", "max fresh s", "mean repeat s"],
        [
            (
                label,
                f"{r['initial']:.4f}",
                f"{mean(r['fresh']):.5f}",
                f"{max(r['fresh']):.5f}",
                f"{mean(r['repeat']):.6f}",
            )
            for label, r in (("delta refresh", warm), ("recompute", cold))
        ],
    )
    mat_stats = warm["stats"]["materialized"]
    print(
        f"refresh speedup: {speedup:.1f}x  (parity={parity}, "
        f"delta_refreshes={mat_stats['delta_refreshes']}, "
        f"answer_refreshes={mat_stats['answer_refreshes']})"
    )

    emit_json(
        {
            "bench": "incremental_maintenance",
            "workload": {
                "facts": n_facts,
                "branch": branch,
                "depth": depth,
                "rounds": rounds,
                "batch_edges": CHAIN,
                "repeats_per_round": REPEATS,
                "quick": args.quick,
            },
            "refresh_mean_seconds": round(mean(warm["fresh"]), 6),
            "refresh_max_seconds": round(max(warm["fresh"]), 6),
            "recompute_mean_seconds": round(mean(cold["fresh"]), 6),
            "refresh_vs_recompute_factor": round(speedup, 1),
            "repeat_query_mean_seconds": round(mean(warm["repeat"]), 6),
            "delta_refreshes": mat_stats["delta_refreshes"],
            "answer_refreshes": mat_stats["answer_refreshes"],
            "parity_with_cold_session": parity,
        },
        path=BENCH_PR7_JSON_PATH,
    )

    # Quick (CI) trees re-derive in milliseconds, where fixed serving
    # overhead (locks, cache bookkeeping) dilutes the factor; the 10x
    # bar binds the full 20k-fact runs.
    required = 10.0 if not args.quick else 2.0
    failures = []
    if not parity:
        failures.append("answers diverged from the cold session")
    if speedup < required:
        failures.append(
            f"refresh speedup {speedup:.1f}x below required {required}x"
        )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
