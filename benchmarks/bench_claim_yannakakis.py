"""Experiment claim-yannakakis — §4.3: the two-stage acyclic-join algorithm.

"The acyclicity and pairwise consistency guarantee that the temporary
relations formed in the second stage grow monotonically, hence their size is
bounded by the size of the final result."  The series: peak intermediate
size with and without the semijoin (full-reducer) stage on acyclic path
schemas with dangling tuples; shape — with reduction, every intermediate is
≤ the final result; without, intermediates exceed it by a factor that grows
with the dangling fraction.
"""

import random

import pytest

from repro.core.hypergraph import Hypergraph
from repro.relational.relation import Relation
from repro.relational.yannakakis import acyclic_join, full_reducer, is_pairwise_consistent

from _support import emit_table, ratio


def path_schema(k: int):
    edges = {"head": set()}
    for i in range(k):
        edges[f"g{i}"] = {f"v{i}", f"v{i+1}"}
    return Hypergraph(edges).gyo_reduction().qual_tree("head")


def path_instance(k: int, n: int, dangling: float, seed: int):
    """k binary relations along a path; a `dangling` fraction never joins."""
    rng = random.Random(seed)
    relations = {"head": Relation((), [()])}
    for i in range(k):
        rows = set()
        for r in range(n):
            if rng.random() < dangling:
                rows.add((f"x{i}-{r}", f"dead{i}-{r}"))  # joins nothing
            else:
                rows.add((f"k{r % 8}", f"k{r % 8}"))  # the consistent core
        relations[f"g{i}"] = Relation((f"v{i}", f"v{i+1}"), rows)
    return relations


def test_claim_yannakakis_monotone_growth():
    rows = []
    tree = path_schema(4)
    for dangling in (0.0, 0.5, 0.9):
        relations = path_instance(4, 64, dangling, seed=11)
        reduced = acyclic_join(tree, relations, reduce_first=True)
        unreduced = acyclic_join(tree, relations, reduce_first=False)
        assert set(reduced.result.rows) == set(unreduced.result.rows)
        final = max(1, len(reduced.result))
        peak_reduced = max(reduced.intermediate_sizes, default=0)
        peak_unreduced = max(unreduced.intermediate_sizes, default=0)
        rows.append(
            (f"{dangling:.0%}", final, peak_reduced, peak_unreduced,
             f"{ratio(peak_unreduced, max(1, peak_reduced)):.1f}x")
        )
        # The guarantee: after full reduction intermediates never exceed the
        # final result.
        assert all(s <= len(reduced.result) for s in reduced.intermediate_sizes)
    emit_table(
        "claim-yannakakis: intermediate growth with/without the semijoin stage",
        ["dangling", "final size", "peak (reduced)", "peak (unreduced)", "factor"],
        rows,
    )
    # Without reduction the dangling tuples inflate intermediates.
    assert float(rows[-1][4].rstrip("x")) > 1.5


def test_claim_yannakakis_reduction_reaches_consistency():
    tree = path_schema(5)
    relations = path_instance(5, 48, 0.6, seed=3)
    assert not is_pairwise_consistent(tree, relations)
    reduced = full_reducer(tree, relations)
    assert is_pairwise_consistent(tree, reduced)


def test_claim_yannakakis_semijoins_linear_in_tree():
    tree = path_schema(6)
    relations = path_instance(6, 32, 0.4, seed=5)
    result = acyclic_join(tree, relations)
    # Two sweeps: at most 2 semijoins per tree edge.
    assert result.meter.semijoins <= 2 * (len(tree.nodes) - 1)


@pytest.mark.benchmark(group="claim-yannakakis")
@pytest.mark.parametrize("mode", ["reduced", "unreduced"])
def test_bench_acyclic_join(benchmark, mode):
    tree = path_schema(4)
    relations = path_instance(4, 128, 0.7, seed=2)
    result = benchmark(acyclic_join, tree, relations, mode == "reduced")
    assert result.result is not None
