"""CI bench smoke: a tiny tuple-sets A/B across runtimes, JSON out.

Runs a small bushy transitive closure (big enough to form real tuple sets,
small enough for a CI minute) through every runtime with set-at-a-time
evaluation on and off, verifies all eight runs return the identical answer
set, and appends machine-readable records to ``BENCH_PR3.json`` at the
*repo root* (uploaded as a CI artifact; earlier revisions wrote it under
``benchmarks/`` where the cross-PR perf trajectory never saw it).  Exits
non-zero on any parity mismatch.

Usage::

    PYTHONPATH=src python benchmarks/smoke.py
"""

from __future__ import annotations

import sys
import time

from _support import emit_json
from repro.network.engine import evaluate
from repro.runtime import evaluate_async, evaluate_multiprocessing, evaluate_pool
from repro.workloads import facts_from_tables, left_recursive_tc_program


def smoke_workload(branch: int = 7, depth: int = 3):
    """A uniform tree TC: 7 + 49 + 343 = 399 edges, all reachable."""
    edges = []
    level = [0]
    next_id = 1
    for _ in range(depth):
        new = []
        for parent in level:
            for _ in range(branch):
                edges.append((parent, next_id))
                new.append(next_id)
                next_id += 1
        level = new
    program = left_recursive_tc_program(0).with_facts(
        facts_from_tables({"e": edges})
    )
    return program, {(i,) for i in range(1, next_id)}, len(edges)


RUNTIMES = {
    "simulator": lambda program, ts: evaluate(program, tuple_sets=ts),
    "asyncio": lambda program, ts: evaluate_async(program, tuple_sets=ts, timeout=120),
    "mp": lambda program, ts: evaluate_multiprocessing(
        program, tuple_sets=ts, timeout=120
    ),
    "pool": lambda program, ts: evaluate_pool(
        program, workers=2, batch_size=64, tuple_sets=ts, timeout=120
    ),
}


def main() -> int:
    program, expected, n_facts = smoke_workload()
    failures = []
    for runtime, run in RUNTIMES.items():
        for tuple_sets in (True, False):
            start = time.perf_counter()
            result = run(program, tuple_sets)
            seconds = time.perf_counter() - start
            ok = result.answers == expected
            logical = getattr(
                result, "total_messages", getattr(result, "messages_sent", None)
            )
            emit_json(
                {
                    "bench": "ci_smoke",
                    "workload": f"tc-bushy-{n_facts}",
                    "runtime": runtime,
                    "knobs": {"tuple_sets": tuple_sets},
                    "seconds": round(seconds, 4),
                    "logical_messages": logical,
                    "answers": len(result.answers),
                    "parity": ok,
                }
            )
            status = "ok" if ok else "MISMATCH"
            print(
                f"{runtime:10s} tuple_sets={str(tuple_sets):5s} "
                f"{seconds:6.2f}s  {len(result.answers)} answers  {status}"
            )
            if not ok:
                failures.append((runtime, tuple_sets))
    if failures:
        print(f"PARITY FAILURES: {failures}", file=sys.stderr)
        return 1
    print(f"smoke ok: {len(RUNTIMES) * 2} runs agree on {len(expected)} answers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
