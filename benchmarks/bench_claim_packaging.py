"""Ablation — footnote 2's packaged tuple requests, quantified.

"A further enhancement would be to 'package' a set of related tuple
requests, in case the node servicing the request can gain some efficiency
of volume ... If packaged, the retrieval can be done in one scan."

Series: for a bursty fanout workload (one probe explodes into many bindings
toward the next subgoal), request messages and EDB operations with and
without packaging; and, as the honest cost side, the same measurement for a
trickling recursive workload where packaging buys little and the extra
buffering slightly increases protocol probing.
"""

import pytest

from repro.baselines import naive
from repro.core.parser import parse_program
from repro.network.engine import evaluate
from repro.workloads import chain_edges, facts_from_tables

from _support import emit_table, ratio

FANOUT_TEXT = """
goal(Z) <- p(k, Z).
p(X, Z) <- src(X, Y), dst(Y, Z).
"""


def fanout_instance(width: int):
    src = [("k", f"y{i}") for i in range(width)]
    dst = [(f"y{i}", f"z{i}") for i in range(width)]
    return parse_program(FANOUT_TEXT).with_facts(
        facts_from_tables({"src": src, "dst": dst})
    )


def test_packaging_fanout_table():
    rows = []
    for width in (16, 64, 256):
        program = fanout_instance(width)
        oracle = naive.goal_answers(program)
        plain = evaluate(program)
        packed = evaluate(program, package_requests=True)
        assert plain.answers == packed.answers == oracle
        request_like_plain = plain.stats.by_kind.get("TupleRequest", 0)
        request_like_packed = packed.stats.by_kind.get(
            "TupleRequest", 0
        ) + packed.stats.by_kind.get("PackagedTupleRequest", 0)
        rows.append(
            (
                width,
                request_like_plain,
                request_like_packed,
                f"{ratio(request_like_plain, max(1, request_like_packed)):.0f}x",
                plain.db_indexed_lookups,
                packed.db_indexed_lookups,
                packed.db_scans,
            )
        )
    emit_table(
        "footnote-2 packaging on a fanout join: request messages & EDB ops",
        ["fanout", "requests (plain)", "requests (packaged)", "reduction",
         "lookups (plain)", "lookups (packaged)", "scans (packaged)"],
        rows,
    )
    # The whole fanout collapses to O(1) packaged requests and one scan.
    final = rows[-1]
    assert int(final[2]) <= 8
    assert int(final[1]) >= 256
    assert int(final[6]) >= 1  # the one-scan service path was taken


def test_packaging_recursive_cost_side():
    # Honest ablation: a trickling chain gains nothing (requests arrive one
    # at a time) and protocol probing can grow slightly.
    program = parse_program(
        """
        goal(Z) <- t(0, Z).
        t(X, Y) <- e(X, Y).
        t(X, Y) <- e(X, U), t(U, Y).
        """
    ).with_facts(facts_from_tables({"e": chain_edges(14)}))
    oracle = naive.goal_answers(program)
    plain = evaluate(program)
    packed = evaluate(program, package_requests=True)
    assert plain.answers == packed.answers == oracle
    emit_table(
        "footnote-2 packaging on a trickling chain (the cost side)",
        ["mode", "total msgs", "computation msgs", "protocol msgs"],
        [
            ("plain", plain.total_messages, plain.computation_messages,
             plain.protocol_messages),
            ("packaged", packed.total_messages, packed.computation_messages,
             packed.protocol_messages),
        ],
    )
    # No blow-up either way: within 50% of each other.
    assert packed.total_messages <= 1.5 * plain.total_messages


@pytest.mark.benchmark(group="claim-packaging")
@pytest.mark.parametrize("mode", ["plain", "packaged"])
def test_bench_packaging(benchmark, mode):
    program = fanout_instance(128)
    result = benchmark(evaluate, program, package_requests=(mode == "packaged"))
    assert result.completed
