"""Ablation — the §3.1 optimization-information extension, quantified.

The paper's greedy strategy assumes "a high degree of ignorance about the
relations in the EDB"; §3.1 notes the message set "can be extended in order
to pass optimization information, offering the possibility of taking
advantage of statistics on the EDB".  This ablation measures what those
statistics are worth: a workload with one huge and one tiny same-shape
subgoal, where the structural greedy score ties and picks the huge one
first, while the cardinality-informed strategy starts from the tiny one.

Series: tuples materialized and EDB rows retrieved for structural greedy
vs statistics-driven SIP as the skew grows; shape — informed work stays
flat while structural work grows with the haystack.
"""

import pytest

from repro.baselines import naive
from repro.core.optimizer import EdbStatistics, statistics_sip
from repro.core.parser import parse_program
from repro.network.engine import evaluate
from repro.relational.database import Database
from repro.workloads import facts_from_tables

from _support import emit_table, ratio

TEXT = """
goal(Z) <- p(k0, Z).
p(X, Z) <- hay(X, Y), probe(X, Y), out(Y, Z).
"""


def instance(hay_rows: int):
    hay = [(f"k{i % 3}", f"y{i}") for i in range(hay_rows)]
    probe = [("k0", "y5"), ("k1", "y6"), ("k0", "y7")]
    out = [(f"y{i}", f"z{i}") for i in range(hay_rows)]
    tables = {"hay": hay, "probe": probe, "out": out}
    program = parse_program(TEXT).with_facts(facts_from_tables(tables))
    stats = EdbStatistics.from_database(Database.from_tuples(tables))
    return program, stats


def test_claim_statistics_ablation():
    rows = []
    series = []
    for hay_rows in (100, 400, 1600):
        program, stats = instance(hay_rows)
        oracle = naive.goal_answers(program)
        structural = evaluate(program)
        informed = evaluate(program, sip_factory=statistics_sip(stats))
        assert structural.answers == informed.answers == oracle
        rows.append(
            (
                hay_rows,
                structural.tuples_stored,
                informed.tuples_stored,
                f"{ratio(structural.tuples_stored, max(1, informed.tuples_stored)):.1f}x",
                structural.db_rows_retrieved,
                informed.db_rows_retrieved,
            )
        )
        series.append((structural.tuples_stored, informed.tuples_stored))
    emit_table(
        "claim-statistics: structural greedy vs EDB-statistics SIP",
        ["hay rows", "greedy tuples", "informed tuples", "factor",
         "greedy EDB rows", "informed EDB rows"],
        rows,
    )
    # Informed work is flat; structural grows with the haystack.
    assert series[-1][1] <= 2 * series[0][1]
    assert series[-1][0] > 4 * series[0][0]
    assert series[-1][0] > 10 * series[-1][1]


def test_claim_statistics_never_wrong():
    # Statistics change strategy, never semantics.
    from repro.workloads import program_p1, p1_tables

    tables = p1_tables(14, 0.5, seed=4)
    program = program_p1().with_facts(facts_from_tables(tables))
    stats = EdbStatistics.from_database(Database.from_tuples(tables))
    assert (
        evaluate(program, sip_factory=statistics_sip(stats)).answers
        == naive.goal_answers(program)
    )


@pytest.mark.benchmark(group="claim-statistics")
@pytest.mark.parametrize("mode", ["structural", "informed"])
def test_bench_statistics(benchmark, mode):
    program, stats = instance(400)
    if mode == "structural":
        result = benchmark(evaluate, program)
    else:
        result = benchmark(evaluate, program, statistics_sip(stats))
    assert result.completed
