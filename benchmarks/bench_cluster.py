"""Cluster vs pool: repeat-query throughput over persistent TCP workers.

The pooled runtime forks a fresh worker set per query; the cluster keeps
its workers registered across jobs, so repeat queries pay only the job
dispatch (one pickled spec down, answers back) — at the price of moving
every cross-shard batch through real TCP frames instead of fork-shared
queues.  This benchmark runs the same workload ``--repeat`` times through
both runtimes and records qps and latency percentiles to
``BENCH_PR10.json``, so the trade is a number, not a guess.

Answers are asserted byte-identical to the naive oracle on every single
run — a throughput record from a wrong answer is worthless.

Usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_cluster.py --quick
    PYTHONPATH=src:benchmarks python benchmarks/bench_cluster.py  # full

Quick mode (CI) uses a small workload and few repeats and asserts parity
only; the full run uses a larger closure so the per-query amortization is
visible in the table.
"""

from __future__ import annotations

import argparse
import sys
import time

from _support import BENCH_PR10_JSON_PATH, emit_json, emit_table
from repro.baselines import naive
from repro.cluster import ClusterHarness, evaluate_cluster
from repro.runtime import evaluate_pool
from repro.workloads import facts_from_tables, left_recursive_tc_program


def tree_tc_workload(branch: int, depth: int):
    """A uniform ``branch``-ary tree TC — every node reachable from 0."""
    edges = []
    level = [0]
    next_id = 1
    for _ in range(depth):
        new = []
        for parent in level:
            for _ in range(branch):
                edges.append((parent, next_id))
                new.append(next_id)
                next_id += 1
        level = new
    program = left_recursive_tc_program(0).with_facts(
        facts_from_tables({"e": edges})
    )
    return program, {(i,) for i in range(1, next_id)}, len(edges)


def percentile(latencies: list, q: float) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def run_series(label: str, fn, program, expected, repeats: int) -> dict:
    """``repeats`` sequential evaluations; per-run oracle parity required."""
    latencies = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(program)
        latencies.append(time.perf_counter() - start)
        assert result.answers == expected, f"{label}: answers diverged"
    total = sum(latencies)
    return {
        "runtime": label,
        "repeats": repeats,
        "qps": repeats / total,
        "p50": percentile(latencies, 0.50),
        "p99": percentile(latencies, 0.99),
        "total_seconds": total,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload, few repeats (the CI leg)",
    )
    parser.add_argument("--repeat", type=int, default=None)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    branch, depth = (7, 3) if args.quick else (14, 3)
    repeats = args.repeat or (5 if args.quick else 20)
    program, expected, n_facts = tree_tc_workload(branch, depth)
    print(f"workload: tc-bushy-{n_facts}, {len(expected)} answers, "
          f"{repeats} repeats x {args.workers} workers")
    assert naive.goal_answers(program) == expected

    series = []
    series.append(
        run_series(
            "pool",
            lambda p: evaluate_pool(
                p, workers=args.workers, batch_size=64, timeout=300
            ),
            program, expected, repeats,
        )
    )
    with ClusterHarness(workers=args.workers) as harness:
        client = harness.client()
        series.append(
            run_series(
                "cluster",
                lambda p: evaluate_cluster(p, client=client, timeout=300),
                program, expected, repeats,
            )
        )

    emit_table(
        f"repeat-query throughput: tc-bushy-{n_facts}, "
        f"{args.workers} workers, {repeats} repeats",
        ["runtime", "qps", "p50 (s)", "p99 (s)", "total (s)"],
        [
            (
                s["runtime"],
                f"{s['qps']:.2f}",
                f"{s['p50']:.3f}",
                f"{s['p99']:.3f}",
                f"{s['total_seconds']:.2f}",
            )
            for s in series
        ],
    )
    for s in series:
        emit_json(
            {
                "bench": "cluster_vs_pool",
                "workload": f"tc-bushy-{n_facts}",
                "runtime": s["runtime"],
                "knobs": {"workers": args.workers, "quick": args.quick},
                "repeats": s["repeats"],
                "qps": round(s["qps"], 3),
                "p50_seconds": round(s["p50"], 4),
                "p99_seconds": round(s["p99"], 4),
                "seconds": round(s["total_seconds"], 4),
                "answers": len(expected),
            },
            path=BENCH_PR10_JSON_PATH,
        )
    print(f"bench ok: {len(series) * repeats} runs agree on "
          f"{len(expected)} answers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
