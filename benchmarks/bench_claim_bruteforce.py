"""Experiment claim-bruteforce — §1.1: the O(n^{t+O(1)}) brute-force wall.

"The running time is O(n^{t+O(1)}) if there are n constants in the system
and at most t variables in any rule."  The series: ground instances and
runtime proxy for the brute-force method vs the message-passing engine's
messages/tuples as the constant count n grows; shape — brute force grows
polynomially with exponent ≈ t (here 3), the engine grows with the *useful*
data only.
"""

import pytest

from repro.baselines import bruteforce, naive
from repro.network.engine import evaluate
from repro.workloads import chain_edges, facts_from_tables, left_recursive_tc_program

from _support import emit_table, ratio


def instance(n: int):
    return left_recursive_tc_program(0).with_facts(
        facts_from_tables({"e": chain_edges(n)})
    )


def test_claim_bruteforce_growth():
    rows = []
    series = []
    for n in (6, 12, 24):
        program = instance(n)
        brute = bruteforce.evaluate(program)
        engine = evaluate(program)
        assert brute.answers() == engine.answers == naive.goal_answers(program)
        rows.append(
            (n, brute.ground_instances, engine.computation_messages,
             engine.tuples_stored)
        )
        series.append((n, brute.ground_instances, engine.computation_messages))
    emit_table(
        "claim-bruteforce: ground instantiation vs message engine (chain TC)",
        ["n constants", "ground instances", "engine comp msgs", "engine tuples"],
        rows,
    )
    # Cubic-ish growth for brute force (t = 3 variables in the recursive
    # rule): doubling n multiplies instances by ~8.
    (_, g1, m1), (_, g2, m2), (_, g3, m3) = series
    assert 6 <= g2 / g1 <= 10 and 6 <= g3 / g2 <= 10
    # The engine's growth is far tamer (quadratic-ish: the chain closure
    # itself is quadratic in n).
    assert m3 / m1 < (g3 / g1) / 2


def test_claim_bruteforce_exponent_tracks_variable_count():
    # Adding one variable to a rule multiplies instances by n.
    from repro.core.parser import parse_program

    two_var = parse_program(
        "goal(X, Y) <- t(X, Y). t(X, Y) <- e(X, Y)."
    ).with_facts(facts_from_tables({"e": chain_edges(10)}))
    three_var = parse_program(
        "goal(X, Y) <- t(X, Y). t(X, Y) <- e(X, U), e(U, Y)."
    ).with_facts(facts_from_tables({"e": chain_edges(10)}))
    n = len(two_var.constants())
    c2 = bruteforce.ground_instance_count(two_var)
    c3 = bruteforce.ground_instance_count(three_var)
    assert c3 == pytest.approx(c2 / 2 * (1 + n), rel=0.01) or c3 > c2 * 3


@pytest.mark.benchmark(group="claim-bruteforce")
@pytest.mark.parametrize("method", ["bruteforce", "engine"])
def test_bench_bruteforce_vs_engine(benchmark, method):
    program = instance(12)
    if method == "bruteforce":
        result = benchmark(bruteforce.evaluate, program)
        assert result.ground_instances > 0
    else:
        result = benchmark(evaluate, program)
        assert result.completed
