"""Experiment fig1 — regenerate Fig 1: the greedy rule/goal graph for P1.

Asserts the exact node inventory, adornments, and cycle edges of the figure,
prints the graph, and benchmarks graph construction (which, per Theorem 2.1,
must be independent of the EDB size — also asserted here).
"""

import pytest

from repro.core.atoms import atom
from repro.core.rulegoal import build_rule_goal_graph
from repro.core.sips import greedy_sip
from repro.workloads import program_p1

from _support import emit_table


def build_fig1():
    return build_rule_goal_graph(program_p1(), greedy_sip)


def test_fig1_structure_and_render():
    graph = build_fig1()
    inventory = sorted(
        (g.predicate, "".join(g.adorned.adornment), g.kind)
        for g in graph.goal_nodes.values()
    )
    emit_table(
        "Fig 1: goal-node inventory of the greedy rule/goal graph for P1",
        ["predicate", "adornment", "kind"],
        inventory,
    )
    print(graph.pretty())
    # Fig 1's inventory (plus the two trivial goal levels the paper omits).
    assert inventory.count(("p", "df", "cyclic")) == 2
    assert inventory.count(("p", "cf", "cyclic")) == 1
    assert inventory.count(("p", "df", "idb")) == 1
    assert inventory.count(("q", "df", "edb")) == 2
    assert ("r", "cf", "edb") in inventory and ("r", "df", "edb") in inventory
    assert len(graph.rule_nodes) == 5
    assert len(graph.strong_components()) == 2


def test_fig1_size_independent_of_edb():
    small = build_rule_goal_graph(program_p1().with_facts([atom("r", "a", 1)]))
    facts = [atom("r", i, i + 1) for i in range(2000)]
    facts += [atom("q", i, i + 2) for i in range(2000)]
    big = build_rule_goal_graph(program_p1().with_facts(facts))
    assert small.size() == big.size()  # Theorem 2.1


@pytest.mark.benchmark(group="fig1-construction")
def test_bench_fig1_construction(benchmark):
    graph = benchmark(build_fig1)
    assert graph.size() == 15
