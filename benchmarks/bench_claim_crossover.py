"""Crossover study — when is restriction worth its overhead?

Sideways information passing pays off when the query touches a *fragment*
of the data; when the query needs essentially the whole minimum model, the
restriction machinery (requests, per-binding retrievals, protocol waves) is
pure overhead over a straight semi-naive sweep.  This experiment sweeps the
*reachable fraction* of the EDB and reports both methods' work, locating the
crossover — the kind of regime map Ullman's capture rules (§1.1) are about:
"if the problem has such-and-such properties, then such-and-such a method is
applicable".

Workload: linear TC from vertex 0 over a graph with one reachable chain of
``k`` vertices and ``n - k`` unreachable vertices, k/n swept from 10% to
100%.  Work metrics: engine = computation messages + tuples stored;
semi-naive = derivations + model tuples (both unitless tallies of touched
items, comparable in spirit, not identical units).
"""

import pytest

from repro.baselines import naive, seminaive
from repro.core.parser import parse_program
from repro.network.engine import evaluate
from repro.workloads import chain_edges, facts_from_tables

from _support import emit_table, ratio

TEXT = """
goal(Z) <- t(0, Z).
t(X, Y) <- e(X, Y).
t(X, Y) <- e(X, U), t(U, Y).
"""

TOTAL = 40


def instance(reachable: int):
    edges = chain_edges(reachable)
    # The unreachable remainder: a disjoint chain.
    base = 10_000
    for i in range(TOTAL - reachable - 1):
        edges.append((base + i, base + i + 1))
    return parse_program(TEXT).with_facts(facts_from_tables({"e": edges}))


def test_claim_crossover_sweep():
    rows = []
    series = []
    for reachable in (4, 10, 20, 30, 40):
        program = instance(reachable)
        oracle = naive.goal_answers(program)
        engine = evaluate(program)
        semi = seminaive.evaluate(program)
        assert engine.answers == oracle == semi.answers()
        engine_work = engine.computation_messages + engine.tuples_stored
        semi_work = semi.derivations + semi.idb_tuples
        rows.append(
            (
                f"{reachable}/{TOTAL}",
                len(oracle),
                engine_work,
                semi_work,
                f"{ratio(semi_work, engine_work):.2f}",
            )
        )
        series.append((reachable, engine_work, semi_work))
    emit_table(
        "crossover: restricted engine vs semi-naive as reachable fraction grows",
        ["reachable", "answers", "engine work", "semi-naive work", "semi/engine"],
        rows,
    )
    # At low reachability the engine wins decisively...
    first = series[0]
    assert first[2] > 2 * first[1]
    # ...and its advantage shrinks monotonically-ish toward full reachability
    # (the regime where restriction cannot exclude anything).
    first_ratio = series[0][2] / series[0][1]
    last_ratio = series[-1][2] / series[-1][1]
    assert last_ratio < first_ratio / 2


def test_claim_crossover_protocol_overhead_is_the_price():
    # At 100% reachability the engine's extra cost over its own computation
    # is visible as protocol share — the price of distribution, not of
    # restriction.
    program = instance(TOTAL)
    engine = evaluate(program)
    assert engine.protocol_messages > 0
    share = engine.protocol_messages / engine.total_messages
    assert share < 0.5  # overhead stays a minority share even here


@pytest.mark.benchmark(group="claim-crossover")
@pytest.mark.parametrize("reachable", [4, 40])
def test_bench_crossover_points(benchmark, reachable):
    program = instance(reachable)
    result = benchmark(evaluate, program)
    assert result.completed
