"""Experiment ex41 — Example 4.1: the R3 blow-up, measured in the engine.

R3 fails the monotone flow property because of the Y/V/W cycle: after
evaluating ``a``, extending the flow through ``b`` first yields W bindings
that restrict ``c``; doing ``b`` and ``c`` "in parallel" (each restricted
only by its own variable from ``a``) "risks computing two large relations
that are nearly unjoinable due to mismatches on W".

We run rule R3 as a real program through the message-passing engine twice:

* **sequential flow** — the greedy SIP: ``c`` receives both V^d and W^d;
* **parallel branches** — a custom SIP that withholds the W binding from
  ``c`` (only V^d), exactly the independent-branch evaluation a qual tree
  would license if one existed.

Both produce identical answers; the series compares tuples materialized and
EDB rows retrieved.  For contrast the same two strategies are run on R2
(monotone — branches genuinely independent), where they tie.
"""

import random

import pytest

from repro.baselines import naive
from repro.core.adornment import head_bound_variables
from repro.core.parser import parse_program
from repro.core.sips import HEAD, SipArc, SipStrategy, greedy_sip
from repro.network.engine import evaluate
from repro.workloads import facts_from_tables

from _support import emit_table, ratio

R3_PROGRAM = """
goal(Z) <- p(x0, Z).
p(X, Z) <- a(X, Y, V), b(Y, W, U), c(V, W, T), d(T), e(U, Z).
"""

R2_PROGRAM = """
goal(Z) <- p(x0, Z).
p(X, Z) <- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).
"""


def parallel_branch_sip(rule, head):
    """Left-to-right flow, but subgoal 2 (``c``) never receives W.

    Applies only to the 5-subgoal rule bodies above; other rules (the goal
    rule) fall back to the greedy strategy.
    """
    if len(rule.body) != 5:
        return greedy_sip(rule, head)
    body = rule.body
    withheld = (body[1].variable_set() & body[2].variable_set()) - body[0].variable_set()
    producer = {v: HEAD for v in head_bound_variables(head)}
    arcs = []
    for index in range(5):
        incoming = {}
        for var in sorted(body[index].variable_set(), key=lambda v: v.name):
            source = producer.get(var)
            if source is None:
                producer[var] = index
            elif not (index == 2 and var in withheld):
                incoming.setdefault(source, set()).add(var)
        for source in sorted(incoming):
            arcs.append(SipArc(source, index, frozenset(incoming[source])))
    return SipStrategy(rule, head, tuple(arcs), tuple(range(5)))


def r3_tables(m: int, per_v: int, seed: int = 7):
    """EDB with deliberate W mismatches between b and c.

    ``a`` fans out to m (Y, V) pairs from x0; ``b`` assigns each Y one W from
    a large domain; ``c`` offers ``per_v`` rows per V over the same large W
    domain, so a (V, W)-bound retrieval hits ~0-1 rows while a V-only
    retrieval always hits ``per_v``.
    """
    rng = random.Random(seed)
    w_domain = 50 * m
    a = [("x0", f"y{i}", f"v{i}") for i in range(m)]
    b = [(f"y{i}", rng.randrange(w_domain), i) for i in range(m)]
    c = []
    for i in range(m):
        for j in range(per_v):
            c.append((f"v{i}", rng.randrange(w_domain), (i, j)))
    # Make a few (V, W) pairs genuinely joinable so answers are nonempty.
    for i in range(0, m, 5):
        c.append((f"v{i}", b[i][1], (i, "hit")))
    d = sorted({row[2] for row in c}, key=repr)
    e = [(i, f"z{i}") for i in range(m)]
    return {"a": a, "b": b, "c": c, "d": [(t,) for t in d], "e": e}


def r2_tables(m: int, per_v: int, seed: int = 7):
    rng = random.Random(seed)
    a = [("x0", f"y{i}", f"v{i}") for i in range(m)]
    b = [(f"y{i}", i) for i in range(m)]
    c = []
    for i in range(m):
        for j in range(per_v):
            c.append((f"v{i}", (i, j)))
    d = sorted({row[1] for row in c}, key=repr)
    e = [(i, f"z{i}") for i in range(m)]
    return {"a": a, "b": b, "c": c, "d": [(t,) for t in d], "e": e}


def run(program_text, tables, sip):
    program = parse_program(program_text).with_facts(facts_from_tables(tables))
    return program, evaluate(program, sip_factory=sip)


def test_ex41_r3_blowup():
    rows = []
    for m, per_v in ((10, 10), (20, 20), (30, 30)):
        tables = r3_tables(m, per_v)
        program, seq = run(R3_PROGRAM, tables, greedy_sip)
        _, par = run(R3_PROGRAM, tables, parallel_branch_sip)
        oracle = naive.goal_answers(program)
        assert seq.answers == par.answers == oracle
        factor = ratio(par.tuples_stored, max(1, seq.tuples_stored))
        rows.append(
            (m, per_v, seq.tuples_stored, par.tuples_stored, f"{factor:.1f}x",
             seq.db_rows_retrieved, par.db_rows_retrieved)
        )
    emit_table(
        "Example 4.1 / R3: sequential flow vs parallel branches (no W passing)",
        ["m", "c rows per V", "seq tuples", "par tuples", "factor",
         "seq EDB rows", "par EDB rows"],
        rows,
    )
    # The blow-up: parallel branches materialize far more, and the gap grows.
    factors = [float(r[4].rstrip("x")) for r in rows]
    assert factors[-1] > 3.0
    assert factors[-1] >= factors[0]


def test_ex41_r2_branches_harmless():
    rows = []
    for m, per_v in ((10, 10), (20, 20)):
        tables = r2_tables(m, per_v)
        program, seq = run(R2_PROGRAM, tables, greedy_sip)
        _, par = run(R2_PROGRAM, tables, parallel_branch_sip)
        assert seq.answers == par.answers == naive.goal_answers(program)
        rows.append((m, per_v, seq.tuples_stored, par.tuples_stored))
    emit_table(
        "Example 4.1 / R2 (monotone): the same two strategies tie",
        ["m", "c rows per V", "seq tuples", "par tuples"],
        rows,
    )
    # R2 has no W: the strategies coincide up to noise.
    for _, _, seq_t, par_t in rows:
        assert par_t <= 1.2 * seq_t


@pytest.mark.benchmark(group="ex41-monotone")
@pytest.mark.parametrize("strategy", ["sequential", "parallel"])
def test_bench_r3_strategies(benchmark, strategy):
    tables = r3_tables(15, 15)
    sip = greedy_sip if strategy == "sequential" else parallel_branch_sip
    program = parse_program(R3_PROGRAM).with_facts(facts_from_tables(tables))
    result = benchmark(evaluate, program, sip)
    assert result.completed
