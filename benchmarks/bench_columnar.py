"""Columnar batch kernels + cost-based planning A/B (PR 8).

Two experiments, both differential against the row-at-a-time kernels:

* **kernels**: row vs columnar evaluation of the 20k-fact bushy
  transitive closure (the PR 3 set-at-a-time workload).  Both sides run
  packaged requests + tuple sets over the *same* graph, so the A/B
  isolates the kernel rewrite: answers, logical message totals, and
  per-distinct-key probe counts must be identical, and the columnar side
  must clear the wall-time bar (>= 3x on the full workload; quick CI
  trees only assert a modest floor because fixed per-run overhead
  dilutes the factor at millisecond scale).

* **planner**: source order vs the Section 4.3 cost planner on a skewed
  join — a wide scan subgoal the textual order evaluates first, which
  the model (seeded with observed EDB sizes) demotes behind the
  selective subgoal.  Answers must be identical; the planned run must
  move fewer logical tuples.

Records land in ``BENCH_PR8.json`` at the repo root (the ``_support``
convention); CI uploads the quick-mode file as an artifact.
"""

from __future__ import annotations

import argparse
import sys
import time

sys.path.insert(0, "benchmarks")
sys.path.insert(0, "src")

from _support import BENCH_PR8_JSON_PATH, emit_json, emit_table, ratio

from repro.network.engine import evaluate
from repro.workloads import facts_from_tables, left_recursive_tc_program

BEST_OF = 5  # wall times are best-of-N to suppress scheduler noise


def bushy_tree_workload(branch: int, depth: int):
    """Uniform ``branch``-ary tree of ``depth`` levels, all edges from 0."""
    edges = []
    level = [0]
    next_id = 1
    for _ in range(depth):
        new = []
        for parent in level:
            for _ in range(branch):
                edges.append((parent, next_id))
                new.append(next_id)
                next_id += 1
        level = new
    program = left_recursive_tc_program(0).with_facts(
        facts_from_tables({"e": edges})
    )
    expected = {(i,) for i in range(1, next_id)}
    return program, expected, len(edges)


def skewed_join_workload(wide: int, narrow: int):
    """A join whose textual order is the wrong one.

    ``ans(X) <- big(X, Y), pick(Y).`` with |big| = ``wide`` and
    |pick| = ``narrow``: evaluated in source order the free-free ``big``
    subgoal ships every row before ``pick`` filters; the cost planner
    (observed sizes) starts from ``pick`` and reaches ``big`` with its
    second argument bound.
    """
    from repro.core.parser import parse_program

    big = [(i, i % (wide // 2 or 1)) for i in range(wide)]
    pick = [(j,) for j in range(narrow)]
    source = "ans(X) <- big(X, Y), pick(Y).\n?- ans(W).\n"
    program = parse_program(source).with_facts(
        facts_from_tables({"big": big, "pick": pick})
    )
    expected = {(x,) for x, y in big if (y,) in set(pick)}
    return program, expected, wide + narrow


def timed_eval(program, expected, **knobs):
    """Best-of-``BEST_OF`` wall time; asserts the answers every run."""
    best = None
    for _ in range(BEST_OF):
        start = time.perf_counter()
        run = evaluate(program, package_requests=True, **knobs)
        elapsed = time.perf_counter() - start
        assert run.answers == expected, "answer set diverged"
        if best is None or elapsed < best[0]:
            best = (elapsed, run)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller tree and skew (CI-sized); relaxes the wall-time bar",
    )
    args = parser.parse_args(argv)
    branch, depth = (8, 3) if args.quick else (27, 3)
    wide, narrow = (2_000, 4) if args.quick else (30_000, 8)

    failures = []

    # ------------------------------------------------------------------
    # Experiment 1: row vs columnar kernels.
    program, expected, n_facts = bushy_tree_workload(branch, depth)
    t_row, row = timed_eval(program, expected, columnar=False)
    t_col, col = timed_eval(program, expected, columnar=True)
    speedup = ratio(t_row, t_col)
    emit_table(
        f"columnar kernels vs row kernels ({n_facts}-fact bushy TC)",
        ["kernel", "seconds", "logical msgs", "probes", "batch rows in"],
        [
            ("row", f"{t_row:.4f}", row.total_messages, row.probe_lookups,
             row.batch_rows_in),
            ("columnar", f"{t_col:.4f}", col.total_messages, col.probe_lookups,
             col.batch_rows_in),
        ],
    )
    print(f"columnar speedup: {speedup:.2f}x")
    if row.total_messages != col.total_messages:
        failures.append(
            f"logical totals diverged: row {row.total_messages} "
            f"vs columnar {col.total_messages}"
        )
    if row.probe_lookups != col.probe_lookups:
        failures.append(
            f"probe counts diverged: row {row.probe_lookups} "
            f"vs columnar {col.probe_lookups}"
        )
    # Millisecond-scale CI trees dilute the factor with fixed overhead;
    # the 3x bar binds the full 20k-fact runs.
    required = 1.2 if args.quick else 3.0
    if speedup < required:
        failures.append(
            f"columnar speedup {speedup:.2f}x below required {required}x"
        )
    emit_json(
        {
            "bench": "columnar_kernels",
            "workload": {
                "facts": n_facts, "branch": branch, "depth": depth,
                "quick": args.quick,
            },
            "knobs": {"package_requests": True, "tuple_sets": True},
            "row_seconds": round(t_row, 4),
            "columnar_seconds": round(t_col, 4),
            "speedup_factor": round(speedup, 2),
            "logical_messages": col.total_messages,
            "probe_lookups": col.probe_lookups,
            "answers": len(expected),
            "parity": row.total_messages == col.total_messages
            and row.probe_lookups == col.probe_lookups,
        },
        path=BENCH_PR8_JSON_PATH,
    )

    # ------------------------------------------------------------------
    # Experiment 2: source order vs the cost planner.
    program, expected, n_facts = skewed_join_workload(wide, narrow)
    t_static, static = timed_eval(program, expected, planner="static")
    t_cost, cost = timed_eval(program, expected, planner="cost")
    plan_speedup = ratio(t_static, t_cost)
    emit_table(
        f"cost planner vs source order (skewed join, |big|={wide}, "
        f"|pick|={narrow})",
        ["planner", "seconds", "logical msgs", "answers"],
        [
            ("static", f"{t_static:.4f}", static.total_messages, len(static.answers)),
            ("cost", f"{t_cost:.4f}", cost.total_messages, len(cost.answers)),
        ],
    )
    reordered = cost.plan.reordered_count if cost.plan else 0
    print(
        f"planner speedup: {plan_speedup:.2f}x "
        f"({cost.plan.oneline() if cost.plan else 'no plan'})"
    )
    if reordered < 1:
        failures.append("cost planner did not reorder the skewed join")
    if cost.total_messages >= static.total_messages:
        failures.append(
            f"planned run moved no fewer tuples: cost {cost.total_messages} "
            f"vs static {static.total_messages}"
        )
    emit_json(
        {
            "bench": "cost_planner",
            "workload": {
                "wide": wide, "narrow": narrow, "quick": args.quick,
            },
            "knobs": {"package_requests": True, "columnar": True},
            "static_seconds": round(t_static, 4),
            "cost_seconds": round(t_cost, 4),
            "speedup_factor": round(plan_speedup, 2),
            "static_logical_messages": static.total_messages,
            "cost_logical_messages": cost.total_messages,
            "rules_reordered": reordered,
            "answers": len(expected),
        },
        path=BENCH_PR8_JSON_PATH,
    )

    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
