"""Shared helpers for the benchmark harness.

Every bench module regenerates one paper artifact (figure, worked example,
or quantitative claim — see DESIGN.md's per-experiment index) and both:

* *benchmarks* the relevant operation via pytest-benchmark, and
* *prints* the comparison table the experiment is about (the rows/series a
  paper evaluation section would report), asserting the qualitative shape —
  who wins, by roughly what factor.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables inline; they are also appended to ``benchmarks/results.txt``).
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")
#: Machine-readable bench records live at the *repo root* so the perf
#: trajectory across PRs is one flat set of BENCH_*.json files (the PR 3
#: records originally landed under benchmarks/ and were invisible there).
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON_PATH = os.path.join(REPO_ROOT, "BENCH_PR3.json")
BENCH_PR5_JSON_PATH = os.path.join(REPO_ROOT, "BENCH_PR5.json")
BENCH_PR6_JSON_PATH = os.path.join(REPO_ROOT, "BENCH_PR6.json")
BENCH_PR7_JSON_PATH = os.path.join(REPO_ROOT, "BENCH_PR7.json")
BENCH_PR8_JSON_PATH = os.path.join(REPO_ROOT, "BENCH_PR8.json")
BENCH_PR9_JSON_PATH = os.path.join(REPO_ROOT, "BENCH_PR9.json")
BENCH_PR10_JSON_PATH = os.path.join(REPO_ROOT, "BENCH_PR10.json")


def emit_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format, print, and persist one experiment table."""
    rows = [tuple(str(c) for c in row) for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [f"== {title} ==", fmt(headers), fmt(["-" * w for w in widths])]
    lines += [fmt(row) for row in rows]
    text = "\n".join(lines)
    print("\n" + text)
    with open(RESULTS_PATH, "a") as handle:
        handle.write(text + "\n\n")
    return text


def ratio(a: float, b: float) -> float:
    """Safe ratio a/b for factor-of-improvement reporting."""
    return a / b if b else float("inf")


def emit_json(record: dict, path: str = BENCH_JSON_PATH) -> dict:
    """Append one machine-readable benchmark record to a root BENCH file.

    Each record is a flat-ish dict — by convention ``bench`` (the emitting
    experiment), ``workload``, ``runtime``, ``knobs`` (evaluation options),
    ``seconds`` (wall time), and the logical/physical message counts.  The
    file is a JSON array, rewritten on every append so it is always valid;
    CI uploads it as an artifact and the A/B assertions read wall times
    from the same numbers the humans see.  ``path`` defaults to the PR 3
    file; the service benchmark passes :data:`BENCH_PR5_JSON_PATH`.
    """
    records = []
    if os.path.exists(path):
        try:
            with open(path) as handle:
                records = json.load(handle)
        except (json.JSONDecodeError, OSError):
            records = []
    records.append(record)
    with open(path, "w") as handle:
        json.dump(records, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return record
