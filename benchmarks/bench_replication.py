"""Replicated-service benchmark: zipf read load with a mid-run SIGKILL.

The PR 9 headline: putting N replica processes behind the failover
front door scales reads past one process's ceiling **and survives
losing a replica mid-run with zero client-visible errors**.  The PR 5
service bench recorded the single-process warm mixed load at 7.1 qps
with a 2.55 s p99 (``BENCH_PR5.json``); the acceptance bar here is
**≥2x that throughput at equal-or-better p99** while a replica is
SIGKILLed, restarted, resynced, and readmitted in the middle of the
measured window.

Shape of the run (same 20,439-fact bushy transitive closure as PR 3/5):

1. *Single-server reference*: the identical client load against one
   ``QueryServer`` — today's one-process number, for the table.
2. *Replicated chaos load*: 100 client threads fire a zipf-distributed
   mix over 8 query variants at a 3-replica :class:`ReplicaSet`.  At
   ~30% progress one replica process is SIGKILLed.  Clients must see
   zero errors; the supervisor must restart, resync, and readmit the
   victim before the run ends.

Records land in ``BENCH_PR9.json`` at the repo root.

Usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_replication.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import statistics
import sys
import threading
import time

from _support import BENCH_PR5_JSON_PATH, BENCH_PR9_JSON_PATH, emit_json, emit_table
from bench_service import tc_bushy_workload
from repro.service import (
    ReplicaConfig,
    ReplicaSetConfig,
    ReplicaSetThread,
    ServerConfig,
    ServerThread,
    ServiceClient,
    SharedSession,
)

#: The committed PR 5 warm-load numbers, used if BENCH_PR5.json is absent.
PR5_QPS = 7.1
PR5_P99 = 2.55113

N_VARIANTS = 8
KILL_AT_FRACTION = 0.3


def pr5_baseline() -> tuple[float, float]:
    """(qps, p99 seconds) from the committed PR 5 warm-load record."""
    try:
        with open(BENCH_PR5_JSON_PATH) as handle:
            for record in json.load(handle):
                if record.get("bench") == "service_warm_load":
                    return float(record["throughput_qps"]), float(record["p99_seconds"])
    except (OSError, ValueError, KeyError):
        pass
    return PR5_QPS, PR5_P99


def zipf_schedule(clients: int, per_client: int, seed: int = 9) -> list[list[str]]:
    """Per-client query lists, zipf-distributed over the variant pool.

    Rank-``k`` variant drawn with probability proportional to ``1/k``:
    a hot head that exercises the answer caches plus a cold tail that
    keeps real evaluations in the mix.  The variants are depth-1
    subtree closures (hundreds of answers each, not the 20k-answer
    full closure), so the measurement is about serving and failover
    rather than shoveling megabyte response payloads.
    """
    variants = [f"t({k}, Z)" for k in range(1, N_VARIANTS + 1)]
    weights = [1.0 / (rank + 1) for rank in range(N_VARIANTS)]
    rng = random.Random(seed)
    return [
        rng.choices(variants, weights=weights, k=per_client) for _ in range(clients)
    ]


class LoadResult:
    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.errors: list[str] = []
        self.done = 0
        self.lock = threading.Lock()


def drive_load(port: int, schedule: list[list[str]], on_progress=None) -> tuple[float, LoadResult]:
    """Every client is a thread with its own connection; wall-clock overall."""
    result = LoadResult()
    total = sum(len(queries) for queries in schedule)

    def client(queries: list[str]) -> None:
        mine: list[float] = []
        try:
            with ServiceClient(port=port, timeout=300.0) as c:
                for q in queries:
                    start = time.perf_counter()
                    c.query(q, timeout=300.0)
                    mine.append(time.perf_counter() - start)
                    with result.lock:
                        result.done += 1
                        done = result.done
                    if on_progress is not None:
                        on_progress(done, total)
        except Exception as exc:  # any client-visible failure is a finding
            result.errors.append(repr(exc))
        with result.lock:
            result.latencies.extend(mine)

    threads = [threading.Thread(target=client, args=(qs,)) for qs in schedule]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - start, result


def prime(port: int, concurrency: int = 6) -> None:
    """Warm every replica's caches: concurrent hits spread by least-inflight."""
    for k in range(1, N_VARIANTS + 1):
        query = f"t({k}, Z)"

        def hit() -> None:
            with ServiceClient(port=port, timeout=300.0) as c:
                c.query(query, timeout=300.0)

        threads = [threading.Thread(target=hit) for _ in range(concurrency)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()


def single_server_reference(program, schedule) -> dict:
    shared = SharedSession(program)
    config = ServerConfig(
        max_concurrent=8, max_queue=4096, default_deadline=300.0
    )
    with ServerThread(shared, config) as port:
        prime(port, concurrency=2)
        wall, result = drive_load(port, schedule)
    if result.errors:
        raise RuntimeError(f"single-server reference failed: {result.errors[0]}")
    return summarize("single server", wall, result)


def replicated_chaos_load(program, schedule, replicas: int = 3) -> tuple[dict, dict]:
    total = sum(len(queries) for queries in schedule)
    kill_at = max(1, int(total * KILL_AT_FRACTION))
    thread = ReplicaSetThread(
        program,
        config=ReplicaSetConfig(
            replicas=replicas,
            read_timeout=300.0,
            health_interval=0.05,
            probe_interval=0.2,
        ),
        replica_config=ReplicaConfig(
            max_concurrent=8, max_queue=4096, default_deadline=300.0
        ),
    )
    killed = threading.Event()

    def on_progress(done: int, _total: int) -> None:
        if done >= kill_at and not killed.is_set():
            killed.set()  # exactly one killer; losers of the race no-op
            victim = thread.replica_set._replicas[1]
            print(
                f"  ... SIGKILL {victim.name} (pid {victim.process.pid}) "
                f"after {done}/{total} requests"
            )
            os.kill(victim.process.pid, signal.SIGKILL)

    port = thread.start(timeout=300.0)
    try:
        prime(port)
        wall, result = drive_load(port, schedule, on_progress)
        with ServiceClient(port=port, timeout=60.0) as c:
            # Let the victim finish restart + resync before the snapshot.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                stats = c.stats()["replication"]
                if stats["healthy"] == replicas and all(
                    snap["applied_seq"] == stats["seq"]
                    for snap in stats["replicas"].values()
                ):
                    break
                time.sleep(0.2)
    finally:
        thread.stop(timeout=120.0)
    assert killed.is_set(), "the run finished before the kill threshold"
    return summarize(f"{replicas}-replica set + SIGKILL", wall, result), stats


def summarize(label: str, wall: float, result: LoadResult) -> dict:
    quantiles = statistics.quantiles(result.latencies, n=100)
    return {
        "label": label,
        "requests": len(result.latencies),
        "errors": len(result.errors),
        "error_samples": result.errors[:3],
        "wall": wall,
        "qps": len(result.latencies) / wall,
        "p50": quantiles[49],
        "p99": quantiles[98],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller tree and fewer clients (CI-sized); headline bars relaxed",
    )
    args = parser.parse_args(argv)
    branch, clients, per_client = (7, 24, 5) if args.quick else (27, 100, 8)

    program, expected, n_facts = tc_bushy_workload(branch, 3)
    schedule = zipf_schedule(clients, per_client)
    total = sum(len(queries) for queries in schedule)
    print(
        f"workload: {n_facts}-fact bushy TC; {clients} clients x {per_client} "
        f"requests, zipf over {N_VARIANTS} variants"
    )

    single = single_server_reference(program, schedule)
    replicated, stats = replicated_chaos_load(program, schedule)
    base_qps, base_p99 = pr5_baseline()

    emit_table(
        f"zipf read load, {clients} clients, {total} requests",
        ["architecture", "qps", "p50 ms", "p99 ms", "errors"],
        [
            ("PR5 warm mixed load (committed)", f"{base_qps:.1f}", "-", f"{base_p99 * 1e3:.0f}", "-"),
            (
                single["label"],
                f"{single['qps']:.1f}",
                f"{single['p50'] * 1e3:.1f}",
                f"{single['p99'] * 1e3:.1f}",
                single["errors"],
            ),
            (
                replicated["label"],
                f"{replicated['qps']:.1f}",
                f"{replicated['p50'] * 1e3:.1f}",
                f"{replicated['p99'] * 1e3:.1f}",
                replicated["errors"],
            ),
        ],
    )
    emit_table(
        "replica set during the run",
        ["metric", "value"],
        [
            ("healthy at end", f"{stats['healthy']}/{len(stats['replicas'])}"),
            ("restarts", stats["restarts"]),
            ("resyncs", stats["resyncs"]),
            ("failovers", stats["failovers"]),
            ("breaker trips", stats["breaker_trips"]),
            ("vs PR5 qps", f"{replicated['qps'] / base_qps:.1f}x"),
        ],
    )
    for phase, record in (("single_server_reference", single), ("replicated_chaos_load", replicated)):
        emit_json(
            {
                "bench": phase,
                "workload": f"tc-bushy-{n_facts}",
                "runtime": "service",
                "knobs": {
                    "clients": clients,
                    "per_client": per_client,
                    "variants": N_VARIANTS,
                    "replicas": 3 if phase == "replicated_chaos_load" else 1,
                    "sigkill_mid_run": phase == "replicated_chaos_load",
                    "quick": args.quick,
                },
                "seconds": round(record["wall"], 4),
                "requests": record["requests"],
                "client_errors": record["errors"],
                "throughput_qps": round(record["qps"], 2),
                "p50_seconds": round(record["p50"], 5),
                "p99_seconds": round(record["p99"], 5),
                "baseline_pr5_qps": base_qps,
                "baseline_pr5_p99_seconds": base_p99,
                **(
                    {
                        "replica_restarts": stats["restarts"],
                        "replica_resyncs": stats["resyncs"],
                        "healthy_at_end": stats["healthy"],
                    }
                    if phase == "replicated_chaos_load"
                    else {}
                ),
            },
            path=BENCH_PR9_JSON_PATH,
        )

    # Acceptance: chaos is invisible, and (full runs) the headline holds.
    failures = []
    if replicated["errors"]:
        failures.append(
            f"{replicated['errors']} client-visible errors, e.g. "
            f"{replicated['error_samples']}"
        )
    if stats["restarts"] < 1:
        failures.append("the SIGKILLed replica was never restarted")
    if stats["healthy"] < len(stats["replicas"]):
        failures.append(
            f"only {stats['healthy']}/{len(stats['replicas'])} replicas healthy at end"
        )
    if not args.quick:
        if replicated["qps"] < 2.0 * base_qps:
            failures.append(
                f"replicated qps {replicated['qps']:.1f} < 2x PR5 baseline {base_qps}"
            )
        if replicated["p99"] > base_p99:
            failures.append(
                f"replicated p99 {replicated['p99']:.3f}s worse than PR5 {base_p99}s"
            )
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print(
        f"ok: {replicated['qps']:.1f} qps ({replicated['qps'] / base_qps:.1f}x PR5) "
        f"at p99 {replicated['p99'] * 1e3:.0f} ms with a mid-run SIGKILL, "
        f"{replicated['errors']} client errors, victim restarted and readmitted"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
