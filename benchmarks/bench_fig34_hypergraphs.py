"""Experiments fig3 & fig4 — the evaluation hypergraphs of rules R2 and R3.

Regenerates both hypergraphs, asserts R2 reduces (acyclic, Fig 3) while R3
leaves the Y/V/W core (cyclic, Fig 4), and benchmarks GYO reduction on
generated chains of growing width.
"""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.core.monotone import evaluation_hypergraph, has_monotone_flow
from repro.workloads import adorned_head_df, rule_r2, rule_r3

from _support import emit_table


def test_fig3_fig4_classification():
    rows = []
    for name, rule in (("R2 (Fig 3)", rule_r2()), ("R3 (Fig 4)", rule_r3())):
        head = adorned_head_df(rule)
        result = evaluation_hypergraph(rule, head).gyo_reduction()
        core = sorted(v.name for v in result.cyclic_core_vertices())
        rows.append((name, "acyclic" if result.acyclic else "cyclic", ",".join(core) or "-"))
    emit_table(
        "Figs 3-4: monotone flow classification of Example 4.1",
        ["rule", "hypergraph", "cyclic core"],
        rows,
    )
    assert rows[0][1] == "acyclic"
    assert rows[1][1] == "cyclic" and rows[1][2] == "V,W,Y"


def chain_hypergraph(n: int) -> Hypergraph:
    edges = {"head": {"v0"}}
    for i in range(n):
        edges[f"g{i}"] = {f"v{i}", f"v{i+1}"}
    return Hypergraph(edges)


def cyclic_hypergraph(n: int) -> Hypergraph:
    h = chain_hypergraph(n)
    edges = dict(h.edges)
    edges["back"] = frozenset({f"v{n}", "v0", "vmid"})
    edges["mid"] = frozenset({"vmid", f"v{n // 2}"})
    return Hypergraph(edges)


def test_generated_chains_acyclic_and_cycles_detected():
    for n in (4, 16, 64):
        assert chain_hypergraph(n).is_acyclic()
    # A chain closed into a ring of binary edges is cyclic for n >= 2.
    ring = {f"g{i}": {f"v{i}", f"v{(i+1) % 8}"} for i in range(8)}
    assert not Hypergraph(ring).is_acyclic()


@pytest.mark.benchmark(group="fig34-gyo")
@pytest.mark.parametrize("n", [16, 64, 256])
def test_bench_gyo_reduction(benchmark, n):
    h = chain_hypergraph(n)
    result = benchmark(h.gyo_reduction)
    assert result.acyclic
