"""Comparison — dynamic (message passing) vs compiled (magic sets) SIP.

The paper's framework realizes sideways information passing *dynamically*:
class-"d" binding sets travel as tuple-request messages at run time.  The
contemporaneous magic-sets transformation compiles the same restriction into
auxiliary predicates evaluated bottom-up.  Both must materialize comparable
restricted relations — this benchmark measures exactly that, plus the
full-model baseline, across workloads.

Series: answers, engine tuples (goal-node relations), magic-restricted IDB
tuples, magic-set sizes, and the unrestricted minimum model.  Shape: both
restricted methods track each other and beat the full model wherever the
query touches a fragment of the data.
"""

import pytest

from repro.baselines import magic, naive
from repro.network.engine import evaluate
from repro.workloads import (
    ancestor_program,
    chain_edges,
    facts_from_tables,
    program_p1,
    p1_tables,
    same_generation_program,
    tree_parent_edges,
)

from _support import emit_table


def cases():
    far = [(500 + i, 501 + i) for i in range(40)]
    return [
        ("ancestor + far region", ancestor_program(0).with_facts(
            facts_from_tables({"par": chain_edges(8) + far}))),
        ("p1 random", program_p1().with_facts(
            facts_from_tables(p1_tables(14, 0.4, seed=6)))),
        ("same-generation", same_generation_program(6).with_facts(
            facts_from_tables({"par": tree_parent_edges(4, 2)}))),
    ]


def test_claim_magic_supplementary_variant():
    # The supplementary refinement materializes rule prefixes once — the
    # compiled image of the engine's stage environments.  Same answers; it
    # trades sup-tuple space for join work on recursion-heavy cases.
    rows = []
    for name, program in cases():
        std = magic.evaluate(program)
        sup = magic.evaluate(program, supplementary=True)
        assert std.answers() == sup.answers()
        rows.append(
            (name, std.run.derivations, sup.run.derivations,
             sup.supplementary_tuples())
        )
    emit_table(
        "magic sets: standard vs supplementary",
        ["case", "std derivations", "sup derivations", "sup tuples"],
        rows,
    )


def test_claim_magic_comparison():
    rows = []
    for name, program in cases():
        oracle = naive.evaluate(program)
        engine = evaluate(program)
        compiled = magic.evaluate(program)
        assert engine.answers == compiled.answers() == oracle.answers()
        # The goal-node answer relations are the engine's restricted IDB.
        engine_goal_tuples = sum(
            count
            for label, count in engine.tuples_by_node.items()
            if "<-" not in label  # goal nodes only, not rule temporaries
        )
        rows.append(
            (
                name,
                len(oracle.answers()),
                engine_goal_tuples,
                compiled.restricted_idb_tuples(),
                compiled.magic_tuples(),
                oracle.idb_tuples,
            )
        )
    emit_table(
        "dynamic vs compiled sideways information passing",
        ["case", "answers", "engine goal tuples", "magic idb tuples",
         "magic-set tuples", "full model"],
        rows,
    )
    for name, _, engine_tuples, magic_tuples, _, full in rows:
        # Both restricted methods land in the same ballpark...
        assert engine_tuples <= 4 * max(1, magic_tuples) + 8, name
        assert magic_tuples <= 4 * max(1, engine_tuples) + 8, name
    # ...and on the far-region case both beat the full model clearly.
    far_row = rows[0]
    assert far_row[5] > 2 * far_row[2]
    assert far_row[5] > 2 * far_row[3]


@pytest.mark.benchmark(group="claim-magic")
@pytest.mark.parametrize("method", ["message-engine", "magic-seminaive"])
def test_bench_magic(benchmark, method):
    name, program = cases()[1]
    if method == "message-engine":
        result = benchmark(evaluate, program)
        assert result.completed
    else:
        result = benchmark(magic.evaluate, program)
        assert result.answers() is not None
