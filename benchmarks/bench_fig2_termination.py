"""Experiment fig2 — the distributed termination protocol in action.

Measures the Fig-2 protocol's cost (waves, protocol messages) as the
workload scales, on live recursive evaluations, and validates Theorem 3.1
against the scheduler's global quiescence oracle on every run.  The series
reported: protocol messages and waves vs EDB cycle length, and the protocol
share of all message traffic.
"""

import pytest

from repro.network.engine import evaluate
from repro.workloads import cycle_edges, facts_from_tables, nonlinear_tc_program

from _support import emit_table, ratio


def run_cycle(n: int, seed=None):
    program = nonlinear_tc_program(0).with_facts(
        facts_from_tables({"e": cycle_edges(n)})
    )
    return evaluate(program, seed=seed)


def test_fig2_protocol_scaling_table():
    rows = []
    for n in (4, 8, 16, 24):
        result = run_cycle(n)
        assert result.completed and not result.protocol_violations
        assert len(result.answers) == n  # full cycle reachability
        rows.append(
            (
                n,
                result.computation_messages,
                result.protocol_messages,
                result.protocol_rounds,
                result.protocol_conclusions,
                f"{ratio(result.protocol_messages, result.total_messages):.2f}",
            )
        )
    emit_table(
        "Fig 2: termination protocol cost vs cycle length (nonlinear TC)",
        ["n", "comp msgs", "proto msgs", "waves", "conclusions", "proto share"],
        rows,
    )
    # Shape: protocol traffic grows with the workload but conclusions stay
    # per-component (liveness without repeated false conclusions).
    assert rows[-1][2] > rows[0][2]
    assert all(row[4] <= 3 for row in rows)


def test_fig2_protocol_robust_to_delivery_order():
    baseline = run_cycle(10).answers
    for seed in (1, 2, 3, 4, 5):
        result = run_cycle(10, seed=seed)
        assert result.answers == baseline
        assert result.protocol_violations == []


@pytest.mark.benchmark(group="fig2-termination")
@pytest.mark.parametrize("n", [8, 16])
def test_bench_fig2_recursive_query(benchmark, n):
    result = benchmark(run_cycle, n)
    assert result.completed
