"""Experiment claim-sip — the central efficiency claim of §1.2/§2.2.

"Class 'd' ... serves to restrict the computed part of the intermediate
relation to values that are (at least potentially) useful for deriving goal
tuples."  Sweep the EDB so the *relevant* region stays fixed while the
irrelevant region grows; compare tuples materialized by

* the greedy sideways engine (restricted),
* the all-free engine (no restriction — full intermediate relations), and
* semi-naive bottom-up (the entire minimum model).

Shape: greedy's work stays flat as irrelevant data grows; the other two grow
with it, so their factor over greedy diverges.
"""

import pytest

from repro.baselines import naive, seminaive
from repro.core.parser import parse_program
from repro.core.sips import all_free_sip
from repro.network.engine import evaluate
from repro.workloads import chain_edges, facts_from_tables

from _support import emit_table, ratio

PROGRAM = """
goal(Z) <- t(0, Z).
t(X, Y) <- e(X, Y).
t(X, Y) <- e(X, U), t(U, Y).
"""


def instance(relevant: int, irrelevant: int):
    edges = chain_edges(relevant)
    base = 10_000
    for i in range(irrelevant):
        edges.append((base + i, base + i + 1))
    return parse_program(PROGRAM).with_facts(facts_from_tables({"e": edges}))


def test_claim_sideways_sweep():
    rows = []
    series = []
    for irrelevant in (0, 20, 40, 80):
        program = instance(relevant=10, irrelevant=irrelevant)
        oracle = naive.evaluate(program)
        greedy = evaluate(program)
        free = evaluate(program, sip_factory=all_free_sip)
        semi = seminaive.evaluate(program)
        assert greedy.answers == oracle.answers() == free.answers == semi.answers()
        rows.append(
            (
                irrelevant,
                greedy.tuples_stored,
                free.tuples_stored,
                semi.idb_tuples,
                f"{ratio(free.tuples_stored, greedy.tuples_stored):.1f}x",
                f"{ratio(semi.idb_tuples, greedy.tuples_stored):.1f}x",
            )
        )
        series.append((greedy.tuples_stored, free.tuples_stored, semi.idb_tuples))
    emit_table(
        "claim-sip: tuples materialized as irrelevant EDB grows (relevant fixed)",
        ["irrelevant edges", "greedy", "all-free", "full model", "free/greedy", "model/greedy"],
        rows,
    )
    greedy_first, free_first, semi_first = series[0]
    greedy_last, free_last, semi_last = series[-1]
    # Greedy is EDB-restricted: flat in the irrelevant region.
    assert greedy_last <= greedy_first * 1.5
    # The unrestricted evaluators grow with the irrelevant region.
    assert free_last > free_first
    assert semi_last > semi_first
    # And by the final point, restriction wins by a clear factor.
    assert free_last > 2 * greedy_last
    assert semi_last > 2 * greedy_last


def test_claim_sideways_messages_follow_tuples():
    sparse = instance(relevant=10, irrelevant=0)
    dense = instance(relevant=10, irrelevant=80)
    greedy_sparse = evaluate(sparse)
    greedy_dense = evaluate(dense)
    # Message traffic of the restricted engine is also insensitive to the
    # irrelevant region (requests never reach it).
    assert greedy_dense.computation_messages <= 1.5 * greedy_sparse.computation_messages


@pytest.mark.benchmark(group="claim-sideways")
@pytest.mark.parametrize("mode", ["greedy", "all-free"])
def test_bench_sideways(benchmark, mode):
    program = instance(relevant=10, irrelevant=40)
    if mode == "greedy":
        result = benchmark(evaluate, program)
    else:
        result = benchmark(evaluate, program, all_free_sip)
    assert result.completed
