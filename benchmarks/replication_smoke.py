"""CI replication smoke: `serve --replicas 3`, SIGKILL a replica, stay up.

The replicated-serving contract under test, end to end through the
real CLI:

1. ``repro serve <file> --data-dir D --replicas 3`` boots a front door
   plus three replica processes and announces one port;
2. a client adds facts and rules through the front door (validated,
   logged, fanned out) and records the answers to a set of queries;
3. one **replica process is SIGKILLed** — its pid taken from the stats
   op — while a client keeps querying: every request must succeed
   (failover masks the death; this is the zero-client-visible-errors
   bar from the chaos tests, through the CLI);
4. the supervisor must restart the victim, resync it from the log, and
   readmit it: stats must return to 3/3 healthy with every replica's
   ``applied_seq`` equal to the log's ``seq``, answers unchanged;
5. finally SIGTERM must drain the whole set and exit 0
   ("drained and stopped").

Exits non-zero on any violation.  Budget: a few CI seconds.

Usage::

    PYTHONPATH=src python benchmarks/replication_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BASE_PROGRAM = """
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, U), anc(U, Y).
par(ann, bob).  par(bob, cal).  par(cal, dee).
"""

EXTRA_FACTS = "par(dee, eve).  par(eve, fay)."
EXTRA_RULES = "desc(X, Y) <- anc(Y, X)."

QUERIES = ["anc(ann, Z)", "anc(dee, Z)", "desc(fay, ann)"]

SERVING_RE = re.compile(r"^serving .* on (\S+):(\d+) ", re.MULTILINE)


def start_replica_set(kb_path: str, data_dir: str) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve --replicas 3`` and parse the front door's port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            kb_path,
            "--port",
            "0",
            "--data-dir",
            data_dir,
            "--replicas",
            "3",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    banner = []
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        banner.append(line)
        match = SERVING_RE.search(line)
        if match:
            return proc, int(match.group(2))
    proc.kill()
    raise RuntimeError(f"front door never announced its port; output: {''.join(banner)}")


def wait_for_recovery(client, replicas: int = 3, timeout: float = 60.0) -> dict:
    """Poll stats until every replica is healthy and fully caught up."""
    deadline = time.monotonic() + timeout
    stats = {}
    while time.monotonic() < deadline:
        stats = client.stats()["replication"]
        if stats["healthy"] == replicas and all(
            snap["state"] == "healthy" and snap["applied_seq"] == stats["seq"]
            for snap in stats["replicas"].values()
        ):
            return stats
        time.sleep(0.2)
    return stats


def main() -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.service import ServiceClient

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        kb_path = os.path.join(tmp, "base.dl")
        with open(kb_path, "w") as handle:
            handle.write(BASE_PROGRAM)
        data_dir = os.path.join(tmp, "state")

        proc, port = start_replica_set(kb_path, data_dir)
        try:
            with ServiceClient(port=port, timeout=30.0) as client:
                # -- Write through the front door; record the answers. --
                ack = client.add_facts(EXTRA_FACTS)
                if ack.get("replicas_applied") != 3:
                    failures.append(
                        f"write fanned out to {ack.get('replicas_applied')}/3 replicas"
                    )
                client.add_rules(EXTRA_RULES)
                before = {q: client.query(q, timeout=30.0).answers for q in QUERIES}
                if ("eve",) not in before.get("anc(ann, Z)", set()):
                    failures.append("the added facts never showed up in answers")

                # -- SIGKILL one replica; queries must keep succeeding. --
                stats = client.stats()["replication"]
                victim_pid = stats["replicas"]["replica-1"]["pid"]
                os.kill(victim_pid, signal.SIGKILL)
                served = 0
                for n in range(40):
                    query = QUERIES[n % len(QUERIES)]
                    try:
                        got = client.query(query, timeout=30.0).answers
                    except Exception as exc:  # zero-visible-errors bar
                        failures.append(f"query failed during failover: {exc!r}")
                        break
                    if got != before[query]:
                        failures.append(f"answer drift during failover on {query!r}")
                        break
                    served += 1
                    time.sleep(0.02)

                # -- The victim must be restarted, resynced, readmitted. --
                stats = wait_for_recovery(client)
                if stats.get("healthy") != 3:
                    failures.append(f"recovery stalled: {stats}")
                if stats.get("restarts", 0) < 1:
                    failures.append("the SIGKILLed replica was never restarted")
                for query, expected in before.items():
                    if client.query(query, timeout=30.0).answers != expected:
                        failures.append(f"answer drift after recovery on {query!r}")

            # -- Graceful path: SIGTERM must drain the set and exit 0. --
            proc.send_signal(signal.SIGTERM)
            try:
                code = proc.wait(60)
            except subprocess.TimeoutExpired:
                failures.append("SIGTERM did not stop the replica set within 60s")
                proc.kill()
                code = proc.wait(10)
            output = proc.stdout.read()
            if code != 0:
                failures.append(f"SIGTERM exit code {code}, expected 0: {output}")
            if "drained and stopped" not in output:
                failures.append(f"graceful-drain banner missing from: {output!r}")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(10)

    if failures:
        print("FAIL:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print(
        f"ok: 3-replica set survived a SIGKILL with {served} mid-failover "
        "queries answered correctly; victim restarted, resynced, readmitted; "
        "SIGTERM drained cleanly"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
