"""Serving benchmark — the cross-query session caching layer.

The ROADMAP north-star is serving heavy repeated traffic, and the paper's
Section 1 split (permanent IDB/EDB, transient per-query rules) is exactly
that architecture.  Theorem 2.1 makes the rule/goal graph EDB-independent,
so a :class:`~repro.session.Session` caches graphs across queries and keeps
one shared, index-preserving Database.  This benchmark serves the same
query repeatedly in three modes:

* **cached session** — graph from the LRU cache, shared indexed EDB;
* **uncached session** — graph rebuilt per query (``graph_cache_size=0``),
  EDB still shared;
* **per-query rebuild** — the seed behavior: a fresh engine per query
  re-runs ``Database.from_facts`` and rebuilds the graph every time.

Shape asserted: cache-hit counters confirm the graph is built exactly once,
the shared Database object is never replaced, and the cached repeat latency
beats the per-query-rebuild latency measurably.
"""

import time

import pytest

from repro.network.engine import evaluate
from repro.session import Session
from repro.workloads import ancestor_program, facts_from_tables, tree_parent_edges

from _support import emit_json, emit_table, ratio

REPEAT = 120
DEPTH = 10  # complete binary tree: 2^11 - 1 vertices, 2046 par facts


def _workload():
    edges = tree_parent_edges(DEPTH)
    leaf = max(child for child, _ in edges)  # deepest, last-numbered leaf
    program = ancestor_program(leaf).with_facts(facts_from_tables({"par": edges}))
    return program, f"anc({leaf}, Z)"


def _serve(session: Session, query: str, repeat: int) -> tuple[float, float, set]:
    """(cold seconds, warm avg seconds, answers) for ``repeat`` queries."""
    start = time.perf_counter()
    answers = session.query(query)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(repeat - 1):
        session.query(query)
    warm_avg = (time.perf_counter() - start) / (repeat - 1)
    return cold, warm_avg, answers


def test_claim_session_cache():
    program, query = _workload()

    cached = Session(program)
    cold, cached_avg, answers = _serve(cached, query, REPEAT)
    assert len(answers) == DEPTH  # the leaf's ancestors up to the root
    stats = cached.cache_stats()
    # The graph was constructed exactly once across all repeats...
    assert stats.misses == 1 and stats.hits == REPEAT - 1
    # ...the very same graph object served every query...
    assert cached.last_result.graph_cache_hit
    # ...and the shared Database was never rebuilt: its counters accumulate
    # while each result reports a per-query delta.
    per_query = cached.last_result.db_indexed_lookups
    assert cached.database.counters()[1] >= REPEAT * max(per_query, 1) - per_query

    uncached = Session(program, graph_cache_size=0)
    _, uncached_avg, uncached_answers = _serve(uncached, query, REPEAT)
    assert uncached_answers == answers
    assert uncached.cache_stats().hits == 0

    # Seed behavior: fresh engine per query (EDB re-indexed, graph rebuilt).
    rebuild_answers = evaluate(program).answers
    assert rebuild_answers == answers
    start = time.perf_counter()
    for _ in range(REPEAT - 1):
        evaluate(program)
    rebuild_avg = (time.perf_counter() - start) / (REPEAT - 1)

    emit_table(
        "Session caching: serving one query shape repeatedly "
        f"({REPEAT} queries, {2 ** (DEPTH + 1) - 2} EDB facts)",
        ["mode", "first (ms)", "repeat avg (ms)", "speedup vs rebuild"],
        [
            (
                "cached session",
                f"{cold * 1e3:.2f}",
                f"{cached_avg * 1e3:.3f}",
                f"{ratio(rebuild_avg, cached_avg):.2f}x",
            ),
            (
                "uncached session",
                "-",
                f"{uncached_avg * 1e3:.3f}",
                f"{ratio(rebuild_avg, uncached_avg):.2f}x",
            ),
            (
                "per-query rebuild (seed)",
                "-",
                f"{rebuild_avg * 1e3:.3f}",
                "1.00x",
            ),
        ],
    )
    for mode, avg in (
        ("cached-session", cached_avg),
        ("uncached-session", uncached_avg),
        ("per-query-rebuild", rebuild_avg),
    ):
        emit_json(
            {
                "bench": "session_cache",
                "workload": f"ancestor-tree-depth-{DEPTH}",
                "runtime": "simulator",
                "knobs": {"mode": mode, "repeat": REPEAT, "tuple_sets": True},
                "seconds": round(avg, 6),
                "logical_messages": cached.last_result.total_messages,
                "answers": len(answers),
            }
        )
    # The qualitative claim: skipping graph construction + EDB indexing must
    # win on repeats.  Generous margins keep the assertion timing-robust.
    assert cached_avg < uncached_avg
    assert cached_avg * 1.2 < rebuild_avg


@pytest.mark.benchmark(group="session-cache")
@pytest.mark.parametrize("mode", ["cached", "uncached", "rebuild"])
def test_bench_session_cache(benchmark, mode):
    program, query = _workload()
    if mode == "rebuild":
        result = benchmark(evaluate, program)
        assert result.completed
        return
    session = Session(
        program, graph_cache_size=64 if mode == "cached" else 0
    )
    session.query(query)  # warm the cache (or prove there is none)
    answers = benchmark(session.query, query)
    assert len(answers) == DEPTH
    assert session.last_result.graph_cache_hit is (mode == "cached")
